//! Criterion microbenchmarks of the building blocks: these measure *real*
//! engine overhead (wall-clock), complementing the virtual-time figure
//! binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dmem_compress::{lz, synth, PageCodec};
use dmem_core::{DisaggregatedMemory, TierPreference};
use dmem_net::Fabric;
use dmem_sim::{CostModel, DetRng, FailureInjector, SimClock};
use dmem_types::{
    ByteSize, ClusterConfig, CompressionMode, EntryId, NodeId, ServerId, PAGE_SIZE,
};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(PAGE_SIZE as u64));
    let mut rng = DetRng::new(1);
    let compressible = synth::page_with_ratio(3.0, &mut rng);
    let incompressible = synth::random_page(&mut rng);
    let codec = PageCodec::new(CompressionMode::FourGranularity);

    group.bench_function("lz_compress_3x_page", |b| {
        b.iter(|| lz::compress(std::hint::black_box(&compressible)))
    });
    group.bench_function("lz_compress_random_page", |b| {
        b.iter(|| lz::compress(std::hint::black_box(&incompressible)))
    });
    let stored = codec.compress(&compressible);
    group.bench_function("lz_decompress_3x_page", |b| {
        b.iter(|| codec.decompress(std::hint::black_box(&stored)).unwrap())
    });
    group.bench_function("synth_page_generation", |b| {
        let mut rng = DetRng::new(2);
        b.iter(|| synth::page_with_ratio(3.0, &mut rng))
    });
    group.finish();
}

fn bench_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric");
    let clock = SimClock::new();
    let failures = FailureInjector::new(clock.clone());
    let fabric = Fabric::new(clock, CostModel::paper_default(), failures);
    let mr = fabric
        .register(NodeId::new(1), ByteSize::from_mib(4))
        .unwrap();
    let qp = fabric.connect(NodeId::new(0), NodeId::new(1)).unwrap();
    let page = vec![7u8; PAGE_SIZE];

    group.throughput(Throughput::Bytes(PAGE_SIZE as u64));
    group.bench_function("rdma_write_4k", |b| {
        b.iter(|| fabric.write(&qp, std::hint::black_box(&page), &mr, 0).unwrap())
    });
    group.bench_function("rdma_read_4k", |b| {
        b.iter(|| fabric.read(&qp, &mr, 0, PAGE_SIZE).unwrap())
    });
    group.finish();
}

fn bench_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("dm_tiers");
    let dm = DisaggregatedMemory::new(ClusterConfig::small()).unwrap();
    let server = dm.servers()[0];
    let mut rng = DetRng::new(3);
    let page = synth::page_with_ratio(2.5, &mut rng);

    group.throughput(Throughput::Bytes(PAGE_SIZE as u64));
    let mut key = 0u64;
    group.bench_function("put_shared", |b| {
        b.iter_batched(
            || {
                key += 1;
                (key, page.clone())
            },
            |(k, p)| {
                dm.put_pref(server, k % 256, p, TierPreference::NodeShared)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("put_remote_replicated", |b| {
        b.iter_batched(
            || {
                key += 1;
                (key, page.clone())
            },
            |(k, p)| {
                dm.put_pref(server, 1_000 + k % 64, p, TierPreference::Remote)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    dm.put(server, 9_999, page.clone()).unwrap();
    group.bench_function("get_shared", |b| {
        b.iter(|| dm.get(server, 9_999).unwrap())
    });
    group.finish();
}

fn bench_node_pool(c: &mut Criterion) {
    use dmem_node::NodeManager;
    use dmem_types::{DonationPolicy, SizeClass};
    let mut group = c.benchmark_group("node_pool");
    let node = NodeId::new(0);
    let manager = NodeManager::new(
        node,
        ByteSize::from_kib(256),
        SimClock::new(),
        CostModel::paper_default(),
    );
    let server = ServerId::new(node, 0);
    manager.register_server(server, ByteSize::from_mib(32), DonationPolicy::fixed(0.5));
    let payload = vec![1u8; 2048];

    let mut key = 0u64;
    group.bench_function("slab_put_2k", |b| {
        b.iter(|| {
            key += 1;
            manager
                .put(
                    EntryId::new(server, key % 1024),
                    payload.clone(),
                    SizeClass::C2K,
                )
                .unwrap()
        })
    });
    manager
        .put(EntryId::new(server, u64::MAX), payload.clone(), SizeClass::C2K)
        .unwrap();
    group.bench_function("slab_get_2k", |b| {
        b.iter(|| manager.get(EntryId::new(server, u64::MAX)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = primitives;
    config = Criterion::default().sample_size(30);
    targets = bench_codec, bench_fabric, bench_tiers, bench_node_pool
}
criterion_main!(primitives);
