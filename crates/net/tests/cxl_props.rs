//! Property tests for the CXL pool's PGAS address codec and
//! consistent-hash placement ring.
//!
//! Three families of properties, per the tier's contract:
//!
//! 1. the `{pool_node, offset}` codec round-trips at every offset,
//!    including the boundary offsets of the 48-bit field;
//! 2. placement is deterministic and balanced within 2x of ideal;
//! 3. growing or shrinking the pool by one node remaps only ~K/n keys —
//!    the property that makes pool expansion cheap.

use dmem_net::{CxlAddr, CxlRing};
use proptest::prelude::*;

/// Offsets that exercise the edges of the 48-bit PGAS offset field.
const BOUNDARY_OFFSETS: [u64; 7] = [
    0,
    1,
    63,
    64,
    (1 << 32) - 1,
    1 << 32,
    (1 << 48) - 1,
];

#[test]
fn codec_round_trips_at_boundary_offsets() {
    for node in [0u16, 1, 2, 255, 256, u16::MAX - 1, u16::MAX] {
        for offset in BOUNDARY_OFFSETS {
            let addr = CxlAddr::encode(node, offset);
            assert_eq!(addr.pool_node(), node, "node at offset {offset:#x}");
            assert_eq!(addr.offset(), offset, "offset for node {node}");
            assert_eq!(CxlAddr::from_raw(addr.raw()), addr);
        }
    }
}

proptest! {
    #[test]
    fn prop_codec_round_trips(node in any::<u16>(), offset in 0u64..(1 << 48)) {
        let addr = CxlAddr::encode(node, offset);
        prop_assert_eq!(addr.pool_node(), node);
        prop_assert_eq!(addr.offset(), offset);
        prop_assert_eq!(CxlAddr::from_raw(addr.raw()), addr);
    }

    #[test]
    fn prop_raw_is_injective(
        node_a in any::<u16>(),
        offset_a in 0u64..(1 << 48),
        node_b in any::<u16>(),
        offset_b in 0u64..(1 << 48),
    ) {
        let a = CxlAddr::encode(node_a, offset_a);
        let b = CxlAddr::encode(node_b, offset_b);
        prop_assert_eq!(a.raw() == b.raw(), (node_a, offset_a) == (node_b, offset_b));
    }

    #[test]
    fn prop_placement_deterministic(nodes in 1u16..=16, keys in proptest::collection::vec(any::<u64>(), 1..64)) {
        let ring_a = CxlRing::new(nodes, CxlRing::DEFAULT_VNODES);
        let ring_b = CxlRing::new(nodes, CxlRing::DEFAULT_VNODES);
        for key in keys {
            let placed = ring_a.place(key);
            prop_assert!(placed < nodes);
            prop_assert_eq!(placed, ring_b.place(key), "independent rings must agree");
        }
    }

    #[test]
    fn prop_placement_balanced_within_2x_of_ideal(nodes in 2u16..=12, salt in any::<u64>()) {
        const KEYS: u64 = 2048;
        let ring = CxlRing::new(nodes, CxlRing::DEFAULT_VNODES);
        let mut counts = vec![0u64; nodes as usize];
        for k in 0..KEYS {
            counts[ring.place(salt.wrapping_add(k)) as usize] += 1;
        }
        let ideal = KEYS / u64::from(nodes);
        let max = *counts.iter().max().unwrap();
        prop_assert!(
            max <= ideal * 2,
            "worst node holds {max} of {KEYS} keys, ideal {ideal} (nodes={nodes})"
        );
    }

    #[test]
    fn prop_one_node_change_remaps_at_most_k_over_n(nodes in 2u16..=12, salt in any::<u64>()) {
        const KEYS: u64 = 2048;
        let small = CxlRing::new(nodes, CxlRing::DEFAULT_VNODES);
        let grown = CxlRing::new(nodes + 1, CxlRing::DEFAULT_VNODES);
        let mut remapped = 0u64;
        for k in 0..KEYS {
            let key = salt.wrapping_add(k);
            if small.place(key) != grown.place(key) {
                remapped += 1;
            }
        }
        // Consistent hashing moves ~K/(n+1) keys on single-node growth;
        // a modulo scheme would move ~K*(n/(n+1)). Allow 2.5x slack over
        // the ideal, which still rules the naive scheme out by a mile.
        let ideal = KEYS / u64::from(nodes + 1);
        prop_assert!(
            remapped <= ideal * 5 / 2,
            "{remapped} of {KEYS} keys remapped on {nodes}->{} growth, ideal {ideal}",
            nodes + 1
        );
        // And growth must remap *something* (the new node takes keys).
        prop_assert!(remapped > 0, "new pool node attracted no keys");
    }
}
