//! The CXL pooled-memory tier (ROADMAP item 4): load/store far memory
//! behind a switch, addressed PGAS-style, placed by consistent hashing.
//!
//! Both surveys in PAPERS.md name CXL memory pooling as the successor to
//! RDMA-based far memory: instead of verbs, queue pairs and retries, a
//! pool node is reached by plain loads and stores a few hundred
//! nanoseconds away. This module models exactly that contrast:
//!
//! * **no verb machinery** — an access is one cost-model charge on the
//!   virtual clock, cacheline-rounded ([`CxlCostModel`]); there is no
//!   retry loop because CXL failures surface as machine checks
//!   (poisoned reads), not timeouts;
//! * **PGAS global addresses** — a [`CxlAddr`] packs `{pool_node,
//!   offset}` into 64 bits, so any host names any byte of the pool
//!   (the memcached-CXL-PGAS global-pointer idiom);
//! * **consistent-hash placement** — a [`CxlRing`] of virtual nodes
//!   maps keys to pool nodes deterministically, balanced, and stable
//!   under pool growth (adding one node remaps ~K/n keys);
//! * **remote atomics** — [`CxlPool::fetch_add`] / [`CxlPool::cas`]
//!   serialize per address in virtual-time order, the way a pool node's
//!   memory controller serializes RMW requests to one line.
//!
//! The tier is constructed only when [`dmem_types::CxlPoolConfig`]
//! enables it; absent a pool, no `cxl.*` metric keys exist and every
//! pre-CXL run is byte-identical.

use dmem_sim::{CostModel, DeviceCost, MetricsRegistry, SimClock, SimDuration, SimInstant};
use dmem_types::{ByteSize, DmemError, DmemResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// CXL transfer granularity: accesses are rounded up to 64-byte lines.
pub const CACHELINE: usize = 64;

/// Bits of a [`CxlAddr`] carrying the pool-node id.
pub const NODE_BITS: u32 = 16;
/// Bits of a [`CxlAddr`] carrying the byte offset within a pool node.
pub const OFFSET_BITS: u32 = 48;
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;

/// A PGAS-style 64-bit global address into the CXL pool: the top 16 bits
/// name the pool node, the low 48 bits the byte offset inside it.
///
/// # Examples
///
/// ```
/// use dmem_net::CxlAddr;
///
/// let addr = CxlAddr::encode(3, 0x1000);
/// assert_eq!(addr.pool_node(), 3);
/// assert_eq!(addr.offset(), 0x1000);
/// assert_eq!(CxlAddr::from_raw(addr.raw()), addr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CxlAddr(u64);

impl CxlAddr {
    /// Packs a pool node and byte offset into one global address.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit the 48-bit offset field.
    pub fn encode(pool_node: u16, offset: u64) -> CxlAddr {
        assert!(
            offset <= OFFSET_MASK,
            "offset {offset:#x} exceeds the {OFFSET_BITS}-bit PGAS offset field"
        );
        CxlAddr((u64::from(pool_node) << OFFSET_BITS) | offset)
    }

    /// The pool node this address lives on.
    pub fn pool_node(self) -> u16 {
        (self.0 >> OFFSET_BITS) as u16
    }

    /// The byte offset within the pool node.
    pub fn offset(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// The raw 64-bit representation (what [`dmem_types::EntryLocation`]
    /// stores).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an address from its raw representation.
    pub fn from_raw(raw: u64) -> CxlAddr {
        CxlAddr(raw)
    }
}

impl fmt::Display for CxlAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cxl{{pool-{}+{:#x}}}", self.pool_node(), self.offset())
    }
}

/// `splitmix64` finalizer: the deterministic, platform-independent mixer
/// behind ring-point and key hashing.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over the pool nodes.
///
/// Each pool node contributes [`CxlRing::DEFAULT_VNODES`] virtual points;
/// a key is placed on the node owning the first point at or after the
/// key's hash (wrapping). Placement is deterministic, balanced within a
/// small factor of ideal, and — the property that matters for pool
/// growth — adding or removing one node remaps only the keys that land
/// on that node's points, ~K/n of them.
///
/// # Examples
///
/// ```
/// use dmem_net::CxlRing;
///
/// let ring = CxlRing::new(4, CxlRing::DEFAULT_VNODES);
/// let node = ring.place(42);
/// assert!(node < 4);
/// assert_eq!(node, CxlRing::new(4, CxlRing::DEFAULT_VNODES).place(42));
/// ```
#[derive(Debug, Clone)]
pub struct CxlRing {
    /// `(point_hash, pool_node)`, sorted by hash.
    points: Vec<(u64, u16)>,
    nodes: u16,
}

impl CxlRing {
    /// Virtual points per pool node: enough that placement stays within
    /// 2x of ideal balance at the pool sizes the figures run.
    pub const DEFAULT_VNODES: usize = 96;

    /// Builds the ring for `nodes` pool nodes with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// Panics on zero nodes or zero vnodes — an empty ring cannot place.
    pub fn new(nodes: u16, vnodes: usize) -> Self {
        assert!(nodes > 0, "ring needs at least one pool node");
        assert!(vnodes > 0, "ring needs at least one virtual point per node");
        let mut points = Vec::with_capacity(nodes as usize * vnodes);
        for node in 0..nodes {
            for v in 0..vnodes {
                // Tag bits keep point hashes disjoint from key hashes.
                let h = mix64((u64::from(node) << 32) | (v as u64) | (1 << 63));
                points.push((h, node));
            }
        }
        points.sort_unstable();
        CxlRing { points, nodes }
    }

    /// The pool node owning `key`.
    pub fn place(&self, key: u64) -> u16 {
        let h = mix64(key);
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, node) = self.points[i % self.points.len()];
        node
    }

    /// Number of pool nodes on the ring.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }
}

/// Load/store cost model of the pool (charged per access, cacheline-
/// rounded). Derived from [`CostModel::cxl`]; no verb, QP or retry
/// machinery applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CxlCostModel {
    /// A load: request/response through the switch, data on the response.
    pub load: DeviceCost,
    /// A store: posted through the write buffer, cheaper to the first
    /// line than a load (no stall on the response).
    pub store: DeviceCost,
    /// One remote atomic (fetch-add / CAS): a read-modify-write executed
    /// by the pool node's memory controller on a single line.
    pub atomic: SimDuration,
}

impl CxlCostModel {
    /// Derives the tier's costs from the cluster cost model: loads at
    /// [`CostModel::cxl`], stores 20% cheaper to the first line, atomics
    /// at twice the load base (the controller's RMW turnaround).
    pub fn from_cost_model(m: &CostModel) -> Self {
        CxlCostModel {
            load: m.cxl,
            store: m.cxl.with_base_scaled(0.8),
            atomic: m.cxl.base * 2,
        }
    }
}

/// Rounds an access up to whole cachelines — the granularity CXL.mem
/// actually moves.
fn lines(bytes: usize) -> usize {
    bytes.div_ceil(CACHELINE) * CACHELINE
}

struct Block {
    capacity: usize,
    data: Vec<u8>,
}

struct PoolNodeState {
    used: u64,
    next_offset: u64,
    down: bool,
}

/// One remote-atomic cell: value plus the serialization point of the
/// pool node's controller for this line.
struct AtomicCell {
    value: u64,
    /// The instant the controller finishes the latest RMW on this line;
    /// later ops at earlier-or-equal instants queue behind it.
    busy_until: SimInstant,
    ops: u64,
}

struct PoolInner {
    nodes: Vec<PoolNodeState>,
    blocks: HashMap<u64, Block>,
    atomics: HashMap<u64, AtomicCell>,
}

/// The simulated CXL memory pool shared by all hosts of a cluster.
///
/// All methods take `&self`; state sits behind one mutex so allocation,
/// accesses and outage transitions interleave deterministically on the
/// shared virtual clock.
///
/// # Examples
///
/// ```
/// use dmem_net::CxlPool;
/// use dmem_sim::{CostModel, MetricsRegistry, SimClock};
/// use dmem_types::ByteSize;
///
/// let clock = SimClock::new();
/// let pool = CxlPool::new(
///     clock.clone(),
///     CostModel::paper_default(),
///     MetricsRegistry::new(),
///     2,
///     ByteSize::from_kib(64),
/// );
/// let addr = pool.alloc(7, 128).unwrap();
/// pool.store(addr, &[0xAB; 128]).unwrap();
/// assert_eq!(pool.load(addr).unwrap(), vec![0xAB; 128]);
/// let counter = pool.alloc_counter(99).unwrap();
/// assert_eq!(pool.fetch_add(counter, 5).unwrap(), 0);
/// assert_eq!(pool.counter_value(counter).unwrap(), 5);
/// ```
pub struct CxlPool {
    clock: SimClock,
    cost: CxlCostModel,
    metrics: MetricsRegistry,
    capacity_per_node: u64,
    ring: CxlRing,
    inner: Mutex<PoolInner>,
}

impl CxlPool {
    /// Creates a pool of `pool_nodes` nodes with `capacity_per_node`
    /// each, costed from `cost.cxl` and counting into `metrics` under
    /// the `cxl.*` family.
    ///
    /// # Panics
    ///
    /// Panics on zero pool nodes (use no pool instead of an empty one).
    pub fn new(
        clock: SimClock,
        cost: CostModel,
        metrics: MetricsRegistry,
        pool_nodes: u16,
        capacity_per_node: ByteSize,
    ) -> Self {
        let ring = CxlRing::new(pool_nodes, CxlRing::DEFAULT_VNODES);
        let nodes = (0..pool_nodes)
            .map(|_| PoolNodeState {
                used: 0,
                next_offset: 0,
                down: false,
            })
            .collect();
        CxlPool {
            clock,
            cost: CxlCostModel::from_cost_model(&cost),
            metrics,
            capacity_per_node: capacity_per_node.as_u64(),
            ring,
            inner: Mutex::new(PoolInner {
                nodes,
                blocks: HashMap::new(),
                atomics: HashMap::new(),
            }),
        }
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CxlCostModel {
        &self.cost
    }

    /// The placement ring.
    pub fn ring(&self) -> &CxlRing {
        &self.ring
    }

    /// Number of pool nodes.
    pub fn pool_nodes(&self) -> u16 {
        self.ring.nodes()
    }

    /// Usable capacity per pool node.
    pub fn capacity_per_node(&self) -> ByteSize {
        ByteSize::new(self.capacity_per_node)
    }

    /// The metrics registry the `cxl.*` family counts into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Allocates `len` bytes for `key` on the ring-placed pool node.
    /// Allocation is pool-manager metadata, handled out of band — it
    /// burns no virtual time; the store that follows pays the fabric.
    ///
    /// # Errors
    ///
    /// [`DmemError::CxlPoolNodeDown`] if the owning node is in an outage
    /// window; [`DmemError::CapacityExhausted`] if it lacks `len` free
    /// bytes (the caller spills to the next tier).
    pub fn alloc(&self, key: u64, len: usize) -> DmemResult<CxlAddr> {
        let node = self.ring.place(key);
        let mut inner = self.inner.lock();
        let state = &mut inner.nodes[node as usize];
        if state.down {
            return Err(DmemError::CxlPoolNodeDown { pool_node: node });
        }
        let rounded = lines(len.max(1)) as u64;
        if state.used + rounded > self.capacity_per_node {
            return Err(DmemError::CapacityExhausted {
                pool: format!("cxl pool-{node}"),
            });
        }
        let offset = state.next_offset;
        state.used += rounded;
        state.next_offset += rounded;
        let addr = CxlAddr::encode(node, offset);
        inner.blocks.insert(
            addr.raw(),
            Block {
                capacity: len,
                data: vec![0; len],
            },
        );
        self.metrics.counter("cxl.alloc.ops").inc();
        Ok(addr)
    }

    /// Frees the block at `addr`, returning its capacity to the node.
    /// Succeeds even while the node is down (metadata, not an access).
    ///
    /// # Errors
    ///
    /// [`DmemError::RegionNotRegistered`] if `addr` was never allocated
    /// or already freed.
    pub fn free(&self, addr: CxlAddr) -> DmemResult<usize> {
        let mut inner = self.inner.lock();
        let block = inner
            .blocks
            .remove(&addr.raw())
            .ok_or(DmemError::RegionNotRegistered)?;
        let rounded = lines(block.capacity.max(1)) as u64;
        inner.nodes[addr.pool_node() as usize].used -= rounded;
        self.metrics.counter("cxl.free.ops").inc();
        Ok(block.capacity)
    }

    /// Checks the access path to `addr`'s pool node and looks the block
    /// up, without touching the clock.
    fn check(inner: &PoolInner, addr: CxlAddr) -> DmemResult<()> {
        if inner.nodes[addr.pool_node() as usize].down {
            return Err(DmemError::CxlPoolNodeDown {
                pool_node: addr.pool_node(),
            });
        }
        if !inner.blocks.contains_key(&addr.raw()) {
            return Err(DmemError::RegionNotRegistered);
        }
        Ok(())
    }

    /// Stores `data` at `addr` (a sequence of posted cacheline writes).
    ///
    /// # Errors
    ///
    /// [`DmemError::CxlPoolNodeDown`] during an outage window (the
    /// caller fails over); [`DmemError::RegionNotRegistered`] for a
    /// never-allocated address; [`DmemError::RegionOutOfBounds`] when
    /// `data` exceeds the block's capacity.
    pub fn store(&self, addr: CxlAddr, data: &[u8]) -> DmemResult<()> {
        let span = self.clock.tracer().span("net", "cxl.store");
        span.tag("bytes", data.len() as u64);
        {
            let mut inner = self.inner.lock();
            Self::check(&inner, addr)?;
            let block = inner.blocks.get_mut(&addr.raw()).expect("checked");
            if data.len() > block.capacity {
                return Err(DmemError::RegionOutOfBounds {
                    offset: addr.offset(),
                    len: data.len() as u64,
                    capacity: block.capacity as u64,
                });
            }
            block.data.clear();
            block.data.extend_from_slice(data);
        }
        let elapsed = self.cost.store.transfer(lines(data.len().max(1)));
        self.clock.advance(elapsed);
        self.metrics.counter("cxl.store.ops").inc();
        self.metrics.counter("cxl.store.bytes").add(data.len() as u64);
        self.metrics.histogram("cxl.store.ns").record(elapsed.as_nanos());
        Ok(())
    }

    /// Loads the block at `addr` (a sequence of cacheline reads).
    ///
    /// # Errors
    ///
    /// [`DmemError::CxlPoolNodeDown`] during an outage window — the
    /// poisoned read surfaces immediately, no transfer budget burns —
    /// and [`DmemError::RegionNotRegistered`] for an unknown address.
    pub fn load(&self, addr: CxlAddr) -> DmemResult<Vec<u8>> {
        let span = self.clock.tracer().span("net", "cxl.load");
        let data = {
            let inner = self.inner.lock();
            Self::check(&inner, addr)?;
            inner.blocks[&addr.raw()].data.clone()
        };
        span.tag("bytes", data.len() as u64);
        let elapsed = self.cost.load.transfer(lines(data.len().max(1)));
        self.clock.advance(elapsed);
        self.metrics.counter("cxl.load.ops").inc();
        self.metrics.counter("cxl.load.bytes").add(data.len() as u64);
        self.metrics.histogram("cxl.load.ns").record(elapsed.as_nanos());
        Ok(data)
    }

    /// Allocates an 8-byte remote-atomic counter cell for `key`,
    /// initialized to zero.
    ///
    /// # Errors
    ///
    /// Same as [`CxlPool::alloc`].
    pub fn alloc_counter(&self, key: u64) -> DmemResult<CxlAddr> {
        let addr = self.alloc(key, 8)?;
        self.inner.lock().atomics.insert(
            addr.raw(),
            AtomicCell {
                value: 0,
                busy_until: SimInstant::EPOCH,
                ops: 0,
            },
        );
        Ok(addr)
    }

    /// One serialized RMW on the cell at `addr`: applies `f` to the
    /// current value, charging the atomic turnaround after any
    /// in-flight RMW on the same line completes (per-address
    /// virtual-time order).
    fn atomic_rmw(
        &self,
        addr: CxlAddr,
        f: impl FnOnce(u64) -> u64,
    ) -> DmemResult<u64> {
        let span = self.clock.tracer().span("net", "cxl.atomic");
        span.tag("pool_node", u64::from(addr.pool_node()));
        let now = self.clock.now();
        let old = {
            let mut inner = self.inner.lock();
            if inner.nodes[addr.pool_node() as usize].down {
                return Err(DmemError::CxlPoolNodeDown {
                    pool_node: addr.pool_node(),
                });
            }
            let cell = inner
                .atomics
                .get_mut(&addr.raw())
                .ok_or(DmemError::RegionNotRegistered)?;
            // Serialize on the line: start after the previous RMW ends.
            let start = if cell.busy_until > now { cell.busy_until } else { now };
            let end = start + self.cost.atomic;
            self.clock.advance(end - now);
            cell.busy_until = end;
            cell.ops += 1;
            let old = cell.value;
            cell.value = f(old);
            old
        };
        self.metrics.counter("cxl.atomic.ops").inc();
        Ok(old)
    }

    /// Atomic fetch-add on the counter cell at `addr`; returns the value
    /// *before* the add.
    ///
    /// # Errors
    ///
    /// [`DmemError::CxlPoolNodeDown`] during an outage (atomics have no
    /// failover target — the cell's history lives only on its node) and
    /// [`DmemError::RegionNotRegistered`] for a non-counter address.
    pub fn fetch_add(&self, addr: CxlAddr, delta: u64) -> DmemResult<u64> {
        self.atomic_rmw(addr, |v| v.wrapping_add(delta))
    }

    /// Atomic compare-and-swap: installs `new` iff the cell holds
    /// `expected`. Returns the observed value either way (equal to
    /// `expected` exactly when the swap happened).
    ///
    /// # Errors
    ///
    /// Same as [`CxlPool::fetch_add`].
    pub fn cas(&self, addr: CxlAddr, expected: u64, new: u64) -> DmemResult<u64> {
        self.atomic_rmw(addr, |v| if v == expected { new } else { v })
    }

    /// Reads the counter cell at `addr` (one cacheline load).
    ///
    /// # Errors
    ///
    /// Same as [`CxlPool::fetch_add`].
    pub fn counter_value(&self, addr: CxlAddr) -> DmemResult<u64> {
        let value = {
            let inner = self.inner.lock();
            if inner.nodes[addr.pool_node() as usize].down {
                return Err(DmemError::CxlPoolNodeDown {
                    pool_node: addr.pool_node(),
                });
            }
            inner
                .atomics
                .get(&addr.raw())
                .ok_or(DmemError::RegionNotRegistered)?
                .value
        };
        let elapsed = self.cost.load.transfer(CACHELINE);
        self.clock.advance(elapsed);
        self.metrics.counter("cxl.load.ops").inc();
        self.metrics.counter("cxl.load.bytes").add(8);
        self.metrics.histogram("cxl.load.ns").record(elapsed.as_nanos());
        Ok(value)
    }

    /// Total RMW ops executed on the cell at `addr` (no clock charge —
    /// controller introspection for invariant checks).
    pub fn counter_ops(&self, addr: CxlAddr) -> u64 {
        self.inner
            .lock()
            .atomics
            .get(&addr.raw())
            .map_or(0, |c| c.ops)
    }

    /// Begins an outage window on `pool_node`: every load, store and
    /// atomic against it fails until [`CxlPool::set_pool_node_up`].
    /// Pool memory survives the window (the loss is reachability, not
    /// data) — but callers cannot know that, which is why writes keep a
    /// shadow copy elsewhere.
    pub fn set_pool_node_down(&self, pool_node: u16) {
        let mut inner = self.inner.lock();
        let state = &mut inner.nodes[pool_node as usize];
        if !state.down {
            state.down = true;
            self.metrics.counter("cxl.node.down.events").inc();
        }
    }

    /// Ends the outage window on `pool_node`.
    pub fn set_pool_node_up(&self, pool_node: u16) {
        let mut inner = self.inner.lock();
        let state = &mut inner.nodes[pool_node as usize];
        if state.down {
            state.down = false;
            self.metrics.counter("cxl.node.up.events").inc();
        }
    }

    /// Whether `pool_node` is currently in an outage window.
    pub fn pool_node_down(&self, pool_node: u16) -> bool {
        self.inner.lock().nodes[pool_node as usize].down
    }

    /// Per-node occupancy: `(pool_node, used_bytes, down)` in node order.
    pub fn occupancy(&self) -> Vec<(u16, u64, bool)> {
        self.inner
            .lock()
            .nodes
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u16, s.used, s.down))
            .collect()
    }

    /// Bytes used across all pool nodes.
    pub fn used_total(&self) -> ByteSize {
        ByteSize::new(self.inner.lock().nodes.iter().map(|s| s.used).sum())
    }
}

impl fmt::Debug for CxlPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CxlPool")
            .field("pool_nodes", &inner.nodes.len())
            .field("capacity_per_node", &self.capacity_per_node)
            .field("blocks", &inner.blocks.len())
            .field("atomics", &inner.atomics.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(nodes: u16, cap_kib: u64) -> (SimClock, CxlPool) {
        let clock = SimClock::new();
        let p = CxlPool::new(
            clock.clone(),
            CostModel::paper_default(),
            MetricsRegistry::new(),
            nodes,
            ByteSize::from_kib(cap_kib),
        );
        (clock, p)
    }

    #[test]
    fn addr_codec_round_trips() {
        for (node, offset) in [(0u16, 0u64), (1, 63), (u16::MAX, OFFSET_MASK)] {
            let addr = CxlAddr::encode(node, offset);
            assert_eq!(addr.pool_node(), node);
            assert_eq!(addr.offset(), offset);
            assert_eq!(CxlAddr::from_raw(addr.raw()), addr);
        }
        assert_eq!(
            CxlAddr::encode(2, 0x40).to_string(),
            "cxl{pool-2+0x40}"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn addr_offset_overflow_rejected() {
        let _ = CxlAddr::encode(0, OFFSET_MASK + 1);
    }

    #[test]
    fn ring_places_deterministically() {
        let ring = CxlRing::new(8, CxlRing::DEFAULT_VNODES);
        for key in 0..512u64 {
            assert!(ring.place(key) < 8);
            assert_eq!(ring.place(key), ring.place(key));
        }
    }

    #[test]
    fn store_load_round_trip_charges_the_clock() {
        let (clock, pool) = pool(2, 64);
        let addr = pool.alloc(1, 200).unwrap();
        let t0 = clock.now();
        pool.store(addr, &[7u8; 200]).unwrap();
        assert_eq!(pool.load(addr).unwrap(), vec![7u8; 200]);
        let elapsed = clock.now() - t0;
        // Two sub-microsecond accesses: far below one RDMA verb base.
        assert!(elapsed.as_nanos() > 0);
        assert!(elapsed.as_micros_f64() < 1.5, "cost {elapsed}");
        assert_eq!(pool.metrics().counter("cxl.load.ops").get(), 1);
        assert_eq!(pool.metrics().counter("cxl.store.bytes").get(), 200);
    }

    #[test]
    fn small_access_beats_rdma_verb_floor() {
        let (clock, p) = pool(1, 64);
        let addr = p.alloc(1, 64).unwrap();
        p.store(addr, &[1u8; 64]).unwrap();
        let t0 = clock.now();
        p.load(addr).unwrap();
        let load_ns = (clock.now() - t0).as_nanos();
        let rdma = CostModel::paper_default().rdma.transfer(64).as_nanos();
        assert!(load_ns * 5 < rdma, "cxl {load_ns} ns vs rdma {rdma} ns");
    }

    #[test]
    fn capacity_exhaustion_spills_with_an_error() {
        let (_, p) = pool(1, 1); // 1 KiB node
        let a = p.alloc(1, 512).unwrap();
        let _b = p.alloc(2, 512).unwrap();
        assert!(matches!(
            p.alloc(3, 64),
            Err(DmemError::CapacityExhausted { .. })
        ));
        // Freeing returns capacity.
        assert_eq!(p.free(a).unwrap(), 512);
        assert!(p.alloc(4, 512).is_ok());
        assert!(matches!(p.free(a), Err(DmemError::RegionNotRegistered)));
    }

    #[test]
    fn outage_fails_access_but_preserves_data() {
        let (_, p) = pool(1, 64);
        let addr = p.alloc(1, 64).unwrap();
        p.store(addr, &[9u8; 64]).unwrap();
        p.set_pool_node_down(0);
        assert!(p.pool_node_down(0));
        assert!(matches!(
            p.load(addr),
            Err(DmemError::CxlPoolNodeDown { pool_node: 0 })
        ));
        assert!(matches!(
            p.store(addr, &[1u8; 64]),
            Err(DmemError::CxlPoolNodeDown { .. })
        ));
        p.set_pool_node_up(0);
        assert_eq!(p.load(addr).unwrap(), vec![9u8; 64]);
        assert_eq!(p.metrics().counter("cxl.node.down.events").get(), 1);
    }

    #[test]
    fn atomics_serialize_per_address_in_time_order() {
        let (clock, p) = pool(1, 64);
        let cell = p.alloc_counter(1).unwrap();
        let atomic = p.cost_model().atomic;
        let t0 = clock.now();
        assert_eq!(p.fetch_add(cell, 3).unwrap(), 0);
        assert_eq!(p.fetch_add(cell, 4).unwrap(), 3);
        // Two RMWs on one line serialize: exactly two atomic turnarounds.
        assert_eq!(clock.now() - t0, atomic * 2);
        assert_eq!(p.counter_value(cell).unwrap(), 7);
        assert_eq!(p.counter_ops(cell), 2);
    }

    #[test]
    fn cas_installs_only_on_match() {
        let (_, p) = pool(2, 64);
        let cell = p.alloc_counter(5).unwrap();
        assert_eq!(p.cas(cell, 0, 10).unwrap(), 0); // swapped
        assert_eq!(p.cas(cell, 0, 99).unwrap(), 10); // observed 10, no swap
        assert_eq!(p.counter_value(cell).unwrap(), 10);
    }

    #[test]
    fn atomics_fail_during_outage_without_mutation() {
        let (_, p) = pool(1, 64);
        let cell = p.alloc_counter(1).unwrap();
        p.fetch_add(cell, 2).unwrap();
        p.set_pool_node_down(0);
        assert!(p.fetch_add(cell, 100).is_err());
        assert!(p.cas(cell, 2, 0).is_err());
        assert!(p.counter_value(cell).is_err());
        p.set_pool_node_up(0);
        assert_eq!(p.counter_value(cell).unwrap(), 2);
        assert_eq!(p.counter_ops(cell), 1);
    }

    #[test]
    fn occupancy_tracks_rounded_lines() {
        let (_, p) = pool(2, 64);
        let a = p.alloc(1, 10).unwrap(); // rounds to one 64 B line
        assert_eq!(p.used_total(), ByteSize::new(64));
        let occ = p.occupancy();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[a.pool_node() as usize].1, 64);
        p.free(a).unwrap();
        assert_eq!(p.used_total(), ByteSize::ZERO);
    }
}
