//! The fabric: registered memory regions, queue pairs and verbs.

use crate::faults::{FabricFault, FabricFaults, VerbOutcome};
use dmem_sim::shard::{ShardId, ShardMap};
use dmem_sim::{CostModel, FailureInjector, MetricsRegistry, SimClock, SimDuration, SimInstant};
use dmem_types::{ByteSize, DmemError, DmemResult, MrId, NodeId, QpId, TenantId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Routes fabric verbs through per-shard-pair mailboxes and verifies the
/// mailbox ordering contract live.
///
/// When a cluster runs sharded (`--shards N`), every verb between two
/// nodes is logically a mailbox envelope between the nodes' shards. The
/// synchronous fabric already executes verbs in a deterministic global
/// order (the virtual clock is shared), so the router does not change
/// delivery — it *observes* each verb, assigns it the mailbox key
/// `(virtual_time, src_shard, seq)`, and asserts that the key stream of
/// every directed shard pair is strictly increasing: exactly the order
/// the sharded engine's merge would produce. A violation panics, which
/// the chaos harness surfaces as a `NoPanic` invariant failure.
///
/// The router keeps its own counters (cross-shard vs. intra-shard verbs)
/// rather than the fabric's metrics registry, so installing it never
/// perturbs metric digests — sharded and unsharded runs stay
/// byte-identical.
#[derive(Debug)]
pub struct ShardRouter {
    map: ShardMap,
    inner: Mutex<RouterInner>,
}

#[derive(Debug, Default)]
struct RouterInner {
    /// Next send sequence number per directed shard pair.
    next_seq: HashMap<(u32, u32), u64>,
    /// Last observed mailbox key per directed shard pair.
    last_key: HashMap<(u32, u32), (u64, u64)>,
    cross: u64,
    local: u64,
}

impl ShardRouter {
    /// Creates a router over a fixed host → shard partition.
    pub fn new(map: ShardMap) -> Self {
        ShardRouter {
            map,
            inner: Mutex::new(RouterInner::default()),
        }
    }

    /// The partition this router enforces.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> ShardId {
        self.map.shard_of(node.index() as usize)
    }

    /// Observes one verb from `src` to `dst` at virtual time `now`:
    /// stamps it with the next `(now, src_shard, seq)` mailbox key and
    /// checks the per-pair key stream stays strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if the mailbox ordering contract is violated (a key not
    /// strictly greater than its pair's predecessor) — that would mean
    /// the sharded merge could disagree with synchronous execution.
    pub fn route(&self, now: SimInstant, src: NodeId, dst: NodeId) {
        let (s, d) = (self.shard_of(src).0, self.shard_of(dst).0);
        let mut inner = self.inner.lock();
        if s == d {
            inner.local += 1;
            return;
        }
        inner.cross += 1;
        let seq = inner.next_seq.entry((s, d)).or_insert(0);
        let key = (now.nanos(), *seq);
        *seq += 1;
        if let Some(prev) = inner.last_key.insert((s, d), key) {
            assert!(
                key > prev,
                "mailbox {s}->{d}: key (t={}, seq={}) not after (t={}, seq={}); \
                 cross-shard verbs must deliver in (time, shard, seq) order",
                key.0,
                key.1,
                prev.0,
                prev.1,
            );
        }
    }

    /// Verbs observed between distinct shards.
    pub fn cross_delivered(&self) -> u64 {
        self.inner.lock().cross
    }

    /// Verbs observed within one shard.
    pub fn local_delivered(&self) -> u64 {
        self.inner.lock().local
    }
}

/// Handle to a registered memory region; carries the remote key the owner
/// hands out to peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionHandle {
    /// Region identifier.
    pub mr: MrId,
    /// Node owning the physical memory.
    pub node: NodeId,
    /// Remote key checked on every one-sided access.
    pub rkey: u64,
}

/// Handle to one endpoint of an RC queue pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QpHandle {
    /// Queue pair identifier (shared by both endpoints).
    pub qp: QpId,
    /// The local endpoint.
    pub local: NodeId,
    /// The remote endpoint.
    pub peer: NodeId,
}

struct Region {
    node: NodeId,
    rkey: u64,
    buf: Vec<u8>,
}

struct QpState {
    a: NodeId,
    b: NodeId,
    /// In-order message queue per direction (two-sided SEND/RECV).
    to_a: VecDeque<Vec<u8>>,
    to_b: VecDeque<Vec<u8>>,
    /// Send sequence numbers per direction, for at-most-once accounting.
    seq_from_a: u64,
    seq_from_b: u64,
    connected: bool,
    /// A broken queue pair (fault injection drove it to the RC error
    /// state): verbs fail until the connection manager re-establishes.
    error: bool,
}

struct Inner {
    regions: HashMap<MrId, Region>,
    qps: HashMap<QpId, QpState>,
    registered_per_node: HashMap<NodeId, ByteSize>,
    /// Per-QP completion queues for the asynchronous verbs: completions
    /// become visible once the link has delivered them.
    cqs: HashMap<QpId, Vec<(SimInstant, Completion)>>,
    /// Per-QP link occupancy: posted transfers serialize on bandwidth.
    busy_until: HashMap<QpId, SimInstant>,
}

/// The kind of work a completion reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// A posted one-sided RDMA WRITE finished.
    Write,
    /// A posted one-sided RDMA READ finished; the payload is attached.
    Read,
}

/// A completion-queue entry for the asynchronous verbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The work-request id returned at post time.
    pub wr_id: u64,
    /// What completed.
    pub kind: CompletionKind,
    /// Payload of a completed READ (empty for writes).
    pub data: Vec<u8>,
}

/// The simulated RDMA fabric shared by all nodes of a cluster.
///
/// Cheap to clone; all clones view the same fabric.
#[derive(Clone)]
pub struct Fabric {
    clock: SimClock,
    cost: CostModel,
    failures: FailureInjector,
    metrics: MetricsRegistry,
    inner: Arc<Mutex<Inner>>,
    next_id: Arc<AtomicU64>,
    /// Tenant currently charged for verbs ([`NO_TENANT`] = unattributed).
    /// Shared across clones, set by the QoS layer around remote
    /// operations; per-tenant counters exist only while a scope is set,
    /// so QoS-disabled runs create no extra metric keys.
    tenant_scope: Arc<AtomicU64>,
    /// Installed-at-most-once fault layer. Absent (the default), verbs
    /// run exactly as they always have: no extra RNG draws, clock
    /// advances or metric keys, so fault-free runs stay byte-identical.
    faults: Arc<OnceLock<Arc<FabricFaults>>>,
    /// Installed-at-most-once shard router. Absent (the default), verbs
    /// skip routing entirely; installed, every verb is checked against
    /// the inter-shard mailbox ordering contract and counted.
    shard_router: Arc<OnceLock<Arc<ShardRouter>>>,
}

/// Sentinel for "no tenant scope in force".
const NO_TENANT: u64 = u64::MAX;

impl Fabric {
    /// Creates a fabric over the given clock, cost model and failure
    /// injector.
    pub fn new(clock: SimClock, cost: CostModel, failures: FailureInjector) -> Self {
        Fabric {
            clock,
            cost,
            failures,
            metrics: MetricsRegistry::new(),
            inner: Arc::new(Mutex::new(Inner {
                regions: HashMap::new(),
                qps: HashMap::new(),
                registered_per_node: HashMap::new(),
                cqs: HashMap::new(),
                busy_until: HashMap::new(),
            })),
            next_id: Arc::new(AtomicU64::new(1)),
            tenant_scope: Arc::new(AtomicU64::new(NO_TENANT)),
            faults: Arc::new(OnceLock::new()),
            shard_router: Arc::new(OnceLock::new()),
        }
    }

    /// Installs the fault-injection layer. All clones of this fabric
    /// observe it; verbs consult it from then on for drops, delays,
    /// duplication, partitions and the retry policy.
    ///
    /// # Panics
    ///
    /// Panics if a layer is already installed — swapping adversaries
    /// mid-run would break seed reproducibility.
    pub fn install_faults(&self, faults: Arc<FabricFaults>) {
        if self.faults.set(faults).is_err() {
            panic!("fault layer already installed for this fabric");
        }
    }

    /// The installed fault layer, if any.
    pub fn faults(&self) -> Option<&Arc<FabricFaults>> {
        self.faults.get()
    }

    /// Whether a fault layer is installed. Layers above use this to keep
    /// their fault-mode accounting (failover counters, suspect marking,
    /// disk write-through) out of fault-free runs.
    pub fn faults_installed(&self) -> bool {
        self.faults.get().is_some()
    }

    /// Installs the shard router. All clones of this fabric observe it;
    /// verbs route through it from then on.
    ///
    /// # Panics
    ///
    /// Panics if a router is already installed — re-partitioning hosts
    /// mid-run would break the mailbox ordering contract.
    pub fn install_shard_router(&self, router: Arc<ShardRouter>) {
        if self.shard_router.set(router).is_err() {
            panic!("shard router already installed for this fabric");
        }
    }

    /// The installed shard router, if any.
    pub fn shard_router(&self) -> Option<&Arc<ShardRouter>> {
        self.shard_router.get()
    }

    /// Routes one delivered verb through the shard router, if installed.
    /// No-op (and no locks taken) otherwise.
    fn route_shard(&self, src: NodeId, dst: NodeId) {
        if let Some(router) = self.shard_router.get() {
            router.route(self.clock.now(), src, dst);
        }
    }

    /// Sets (or clears) the tenant charged for subsequent verbs. All
    /// clones of this fabric observe the scope; callers bracket their
    /// remote operations with set/clear.
    pub fn set_tenant_scope(&self, tenant: Option<TenantId>) {
        let raw = tenant.map_or(NO_TENANT, |t| u64::from(t.index()));
        self.tenant_scope.store(raw, Ordering::Relaxed);
    }

    /// The tenant currently charged for verbs, if any.
    pub fn tenant_scope(&self) -> Option<TenantId> {
        match self.tenant_scope.load(Ordering::Relaxed) {
            NO_TENANT => None,
            raw => Some(TenantId::new(raw as u32)),
        }
    }

    /// Attributes `bytes` of verb traffic to the scoped tenant, if one is
    /// set. No-op (and no metric keys created) otherwise.
    fn charge_tenant(&self, bytes: u64) {
        let raw = self.tenant_scope.load(Ordering::Relaxed);
        if raw == NO_TENANT {
            return;
        }
        self.metrics
            .counter(&format!("net.tenant-{raw}.ops"))
            .inc();
        self.metrics
            .counter(&format!("net.tenant-{raw}.bytes"))
            .add(bytes);
    }

    /// The fabric's metrics registry (verb counts, bytes moved).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The failure injector the fabric consults.
    pub fn failures(&self) -> &FailureInjector {
        &self.failures
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers `len` bytes of DRAM on `node` for remote access.
    ///
    /// Registration pins pages and programs the NIC's translation table;
    /// we charge one RDMA base latency per 256 registered pages to model
    /// that this is not free (which is why the eviction handler
    /// deregisters preemptively, §IV-F).
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::NodeUnavailable`] if the node is down.
    pub fn register(&self, node: NodeId, len: ByteSize) -> DmemResult<RegionHandle> {
        if !self.failures.is_node_up(node) {
            return Err(DmemError::NodeUnavailable(node));
        }
        let pages = len.pages(4096);
        let span = self.clock.tracer().span("net", "register");
        span.tag("bytes", len.as_u64());
        self.clock
            .advance(self.cost.rdma.base * pages.div_ceil(256).max(1));
        let mr = MrId::new(self.fresh_id());
        let rkey = self.fresh_id() ^ u64_rotate(mr.as_u64());
        let mut inner = self.inner.lock();
        inner.regions.insert(
            mr,
            Region {
                node,
                rkey,
                buf: vec![0; len.as_usize()],
            },
        );
        *inner
            .registered_per_node
            .entry(node)
            .or_insert(ByteSize::ZERO) += len;
        self.metrics.counter("net.mr.registered").inc();
        Ok(RegionHandle { mr, node, rkey })
    }

    /// Deregisters a region, releasing its memory.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::RegionNotRegistered`] if the region does not
    /// exist (e.g. already deregistered).
    pub fn deregister(&self, handle: &RegionHandle) -> DmemResult<()> {
        let mut inner = self.inner.lock();
        let region = inner
            .regions
            .remove(&handle.mr)
            .ok_or(DmemError::RegionNotRegistered)?;
        let len = ByteSize::from(region.buf.len());
        if let Some(total) = inner.registered_per_node.get_mut(&region.node) {
            *total -= len;
        }
        self.metrics.counter("net.mr.deregistered").inc();
        Ok(())
    }

    /// Total bytes currently registered on `node`.
    pub fn registered_bytes(&self, node: NodeId) -> ByteSize {
        self.inner
            .lock()
            .registered_per_node
            .get(&node)
            .copied()
            .unwrap_or(ByteSize::ZERO)
    }

    /// Establishes an RC queue pair between two nodes.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::NodeUnavailable`] or [`DmemError::LinkDown`]
    /// if either endpoint or the link is down.
    pub fn connect(&self, a: NodeId, b: NodeId) -> DmemResult<QpHandle> {
        self.check_path(a, b)?;
        // Connection establishment is a control-plane round trip.
        self.clock.advance(self.cost.rdma.base * 2);
        let qp = QpId::new(self.fresh_id());
        self.inner.lock().qps.insert(
            qp,
            QpState {
                a,
                b,
                to_a: VecDeque::new(),
                to_b: VecDeque::new(),
                seq_from_a: 0,
                seq_from_b: 0,
                connected: true,
                error: false,
            },
        );
        self.metrics.counter("net.qp.connected").inc();
        Ok(QpHandle { qp, local: a, peer: b })
    }

    /// The same queue pair viewed from the other endpoint.
    pub fn peer_handle(&self, qp: &QpHandle) -> QpHandle {
        QpHandle {
            qp: qp.qp,
            local: qp.peer,
            peer: qp.local,
        }
    }

    /// Tears down a queue pair.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::RegionNotRegistered`] if the queue pair is
    /// unknown.
    pub fn disconnect(&self, qp: &QpHandle) -> DmemResult<()> {
        let mut inner = self.inner.lock();
        let state = inner
            .qps
            .get_mut(&qp.qp)
            .ok_or(DmemError::RegionNotRegistered)?;
        state.connected = false;
        Ok(())
    }

    /// Whether RDMA traffic can flow between `a` and `b` right now:
    /// both endpoints up and the link between them intact.
    ///
    /// This is the reachability query the chaos harness uses to decide
    /// whether a replica *should* be readable before asserting that a
    /// get succeeds.
    pub fn is_path_up(&self, a: NodeId, b: NodeId) -> bool {
        self.check_path(a, b).is_ok()
    }

    fn check_path(&self, a: NodeId, b: NodeId) -> DmemResult<()> {
        self.apply_due_faults();
        if !self.failures.is_node_up(a) {
            return Err(DmemError::NodeUnavailable(a));
        }
        if !self.failures.is_node_up(b) {
            return Err(DmemError::NodeUnavailable(b));
        }
        if !self.failures.is_link_up(a, b) {
            return Err(DmemError::LinkDown { from: a, to: b });
        }
        if let Some(faults) = self.faults.get() {
            if faults.partitioned(a, b) {
                return Err(DmemError::LinkDown { from: a, to: b });
            }
        }
        Ok(())
    }

    /// Applies every scheduled fault whose due time has passed. Called
    /// from [`Fabric::check_path`], so any verb (or reachability query)
    /// observes the fault state as of the current virtual instant.
    fn apply_due_faults(&self) {
        let Some(faults) = self.faults.get() else { return };
        for fault in faults.take_due(self.clock.now()) {
            match fault {
                FabricFault::Partition { .. } => {
                    self.metrics.counter("faults.partition.begin").inc();
                }
                FabricFault::Heal { .. } => {
                    self.metrics.counter("faults.partition.heal").inc();
                }
                FabricFault::BreakQps { a, b } => {
                    self.break_qps(a, b);
                }
            }
        }
    }

    /// Drives every established queue pair between `a` and `b` (either
    /// orientation) to the error state, as a NIC does on RC retransmit
    /// exhaustion. Verbs on a broken pair fail with [`DmemError::LinkDown`]
    /// until [`crate::ConnectionManager`] re-establishes fresh pairs.
    /// Returns how many pairs broke.
    pub fn break_qps(&self, a: NodeId, b: NodeId) -> usize {
        let mut broken = 0usize;
        {
            let mut inner = self.inner.lock();
            for state in inner.qps.values_mut() {
                let on_pair = (state.a == a && state.b == b) || (state.a == b && state.b == a);
                if on_pair && state.connected && !state.error {
                    state.error = true;
                    broken += 1;
                }
            }
        }
        if broken > 0 {
            self.metrics.counter("faults.qp.broken").add(broken as u64);
        }
        broken
    }

    fn check_qp(&self, qp: &QpHandle) -> DmemResult<()> {
        self.check_path(qp.local, qp.peer)?;
        let inner = self.inner.lock();
        match inner.qps.get(&qp.qp) {
            Some(state) if state.connected && !state.error => Ok(()),
            _ => Err(DmemError::LinkDown {
                from: qp.local,
                to: qp.peer,
            }),
        }
    }

    /// Runs one verb attempt under the installed retry policy: transient
    /// failures (timeouts, link errors) back off exponentially with
    /// seeded jitter on the virtual clock and retry, up to the policy's
    /// attempt budget or per-verb deadline. Without an installed fault
    /// layer this is exactly one plain call.
    ///
    /// Backoff waits happen outside any sync span, so they land in the
    /// attribution's `(untraced)` row and the exact-identity property
    /// (rows + untraced = total) is preserved; each wait is additionally
    /// recorded as an async `faults/backoff` timeline event.
    fn with_retry<T>(
        &self,
        what: &'static str,
        mut attempt_once: impl FnMut() -> DmemResult<T>,
    ) -> DmemResult<T> {
        let Some(faults) = self.faults.get() else {
            return attempt_once();
        };
        let policy = faults.retry();
        let deadline = self.clock.now() + policy.op_timeout;
        let mut attempt = 0u32;
        // Total backoff wait this verb accumulated, recorded into the
        // `faults.retry.wait.ns` histogram whenever a retry happened —
        // the per-attempt `net.*.ns` histograms see only the successful
        // transfer, so this is the timeline's view of retry-induced
        // latency (and what the burn-rate alert rules watch). The key is
        // only ever created after a real retry, keeping fault-free runs
        // metric-free.
        let mut waited = SimDuration::ZERO;
        loop {
            match attempt_once() {
                Ok(value) => {
                    if attempt > 0 {
                        self.metrics.counter("faults.retry.recovered").inc();
                        self.metrics
                            .histogram("faults.retry.wait.ns")
                            .record(waited.as_nanos());
                    }
                    return Ok(value);
                }
                Err(e) => {
                    let transient = matches!(
                        e,
                        DmemError::Timeout { .. } | DmemError::LinkDown { .. }
                    );
                    if !transient || attempt + 1 >= policy.attempts.max(1) {
                        if transient {
                            self.metrics.counter("faults.retry.exhausted").inc();
                        }
                        if attempt > 0 {
                            self.metrics
                                .histogram("faults.retry.wait.ns")
                                .record(waited.as_nanos());
                        }
                        return Err(e);
                    }
                    let now = self.clock.now();
                    if now >= deadline {
                        self.metrics.counter("faults.retry.deadline").inc();
                        if attempt > 0 {
                            self.metrics
                                .histogram("faults.retry.wait.ns")
                                .record(waited.as_nanos());
                        }
                        return Err(DmemError::Timeout {
                            what: format!("net.{what} deadline"),
                        });
                    }
                    let wait = faults.jittered_backoff(attempt);
                    self.metrics.counter("faults.retry.attempts").inc();
                    waited = waited + wait;
                    self.clock.advance(wait);
                    self.clock.tracer().record_async(
                        "faults",
                        "backoff",
                        now,
                        self.clock.now(),
                        &[("attempt", u64::from(attempt) + 1)],
                    );
                    attempt += 1;
                }
            }
        }
    }

    /// Applies the fault layer's verdict to one verb attempt: charges
    /// injected latency (delays, duplicated transfers) to the virtual
    /// clock and surfaces drops as timeouts. No-op without a layer.
    fn inject_verb_fault(&self, verb: &'static str, bytes: usize) -> DmemResult<()> {
        let Some(faults) = self.faults.get() else {
            return Ok(());
        };
        match faults.verb_outcome() {
            VerbOutcome::Deliver => Ok(()),
            VerbOutcome::Drop => {
                // The verb left the NIC; the RC retransmit budget burns
                // the full transfer before the caller sees the timeout.
                let t0 = self.clock.now();
                self.clock.advance(self.cost.rdma.transfer(bytes));
                self.metrics.counter("faults.inject.drop").inc();
                self.clock.tracer().record_async(
                    "faults",
                    "drop",
                    t0,
                    self.clock.now(),
                    &[("bytes", bytes as u64)],
                );
                Err(DmemError::Timeout {
                    what: format!("rdma {verb}"),
                })
            }
            VerbOutcome::Delay(extra) => {
                let t0 = self.clock.now();
                self.clock.advance(extra);
                self.metrics.counter("faults.inject.delay").inc();
                self.clock.tracer().record_async(
                    "faults",
                    "delay",
                    t0,
                    self.clock.now(),
                    &[("bytes", bytes as u64)],
                );
                Ok(())
            }
            VerbOutcome::Duplicate => {
                // Idempotent at this layer (same bytes, same slot), so
                // duplication costs wire time, not correctness.
                let t0 = self.clock.now();
                self.clock.advance(self.cost.rdma.transfer(bytes));
                self.metrics.counter("faults.inject.duplicate").inc();
                self.clock.tracer().record_async(
                    "faults",
                    "duplicate",
                    t0,
                    self.clock.now(),
                    &[("bytes", bytes as u64)],
                );
                Ok(())
            }
        }
    }

    /// One-sided RDMA WRITE: places `data` into the remote region at
    /// `offset` without involving the remote CPU.
    ///
    /// # Errors
    ///
    /// Fails if the path is down ([`DmemError::LinkDown`] /
    /// [`DmemError::NodeUnavailable`]), the region is gone
    /// ([`DmemError::RegionNotRegistered`]), the rkey does not match
    /// ([`DmemError::AccessDenied`]), the access is out of bounds
    /// ([`DmemError::RegionOutOfBounds`]), or the region is not on the
    /// peer node ([`DmemError::AccessDenied`]).
    pub fn write(&self, qp: &QpHandle, data: &[u8], region: &RegionHandle, offset: u64) -> DmemResult<()> {
        self.with_retry("write", || self.write_attempt(qp, data, region, offset))
    }

    fn write_attempt(
        &self,
        qp: &QpHandle,
        data: &[u8],
        region: &RegionHandle,
        offset: u64,
    ) -> DmemResult<()> {
        let span = self.clock.tracer().span("net", "write");
        span.tag("bytes", data.len());
        self.one_sided_access(qp, region, offset, data.len())?;
        self.inject_verb_fault("write", data.len())?;
        let t0 = self.clock.now();
        self.clock.advance(self.cost.rdma.transfer(data.len()));
        let elapsed = self.clock.now() - t0;
        let mut inner = self.inner.lock();
        let r = inner
            .regions
            .get_mut(&region.mr)
            .ok_or(DmemError::RegionNotRegistered)?;
        let start = offset as usize;
        r.buf[start..start + data.len()].copy_from_slice(data);
        self.metrics.counter("net.write.ops").inc();
        self.metrics.counter("net.write.bytes").add(data.len() as u64);
        self.metrics.histogram("net.write.ns").record(elapsed.as_nanos());
        self.charge_tenant(data.len() as u64);
        self.route_shard(qp.local, qp.peer);
        Ok(())
    }

    /// One-sided RDMA READ: fetches `len` bytes from the remote region.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fabric::write`].
    pub fn read(&self, qp: &QpHandle, region: &RegionHandle, offset: u64, len: usize) -> DmemResult<Vec<u8>> {
        self.with_retry("read", || self.read_attempt(qp, region, offset, len))
    }

    fn read_attempt(
        &self,
        qp: &QpHandle,
        region: &RegionHandle,
        offset: u64,
        len: usize,
    ) -> DmemResult<Vec<u8>> {
        let span = self.clock.tracer().span("net", "read");
        span.tag("bytes", len);
        self.one_sided_access(qp, region, offset, len)?;
        self.inject_verb_fault("read", len)?;
        let t0 = self.clock.now();
        self.clock.advance(self.cost.rdma.transfer(len));
        let elapsed = self.clock.now() - t0;
        let inner = self.inner.lock();
        let r = inner
            .regions
            .get(&region.mr)
            .ok_or(DmemError::RegionNotRegistered)?;
        let start = offset as usize;
        let out = r.buf[start..start + len].to_vec();
        self.metrics.counter("net.read.ops").inc();
        self.metrics.counter("net.read.bytes").add(len as u64);
        self.metrics.histogram("net.read.ns").record(elapsed.as_nanos());
        self.charge_tenant(len as u64);
        self.route_shard(qp.local, qp.peer);
        Ok(out)
    }

    fn one_sided_access(
        &self,
        qp: &QpHandle,
        region: &RegionHandle,
        offset: u64,
        len: usize,
    ) -> DmemResult<()> {
        self.check_qp(qp)?;
        let inner = self.inner.lock();
        let r = inner
            .regions
            .get(&region.mr)
            .ok_or(DmemError::RegionNotRegistered)?;
        if r.rkey != region.rkey {
            return Err(DmemError::AccessDenied);
        }
        if r.node != qp.peer {
            // One-sided verbs go to the connected peer's memory only.
            return Err(DmemError::AccessDenied);
        }
        let end = offset
            .checked_add(len as u64)
            .ok_or(DmemError::RegionOutOfBounds {
                offset,
                len: len as u64,
                capacity: r.buf.len() as u64,
            })?;
        if end > r.buf.len() as u64 {
            return Err(DmemError::RegionOutOfBounds {
                offset,
                len: len as u64,
                capacity: r.buf.len() as u64,
            });
        }
        Ok(())
    }

    /// Two-sided SEND: enqueues a message for the peer (control plane).
    ///
    /// Messages preserve boundaries and order, per the RDMA access model
    /// the paper describes in §IV-G.
    ///
    /// # Errors
    ///
    /// Fails with the same path errors as the one-sided verbs.
    pub fn send(&self, qp: &QpHandle, msg: Vec<u8>) -> DmemResult<u64> {
        // The clone feeds retries; skip it entirely on the fault-free
        // hot path.
        if self.faults.get().is_none() {
            return self.send_attempt(qp, msg);
        }
        self.with_retry("send", || self.send_attempt(qp, msg.clone()))
    }

    fn send_attempt(&self, qp: &QpHandle, msg: Vec<u8>) -> DmemResult<u64> {
        let span = self.clock.tracer().span("net", "send");
        span.tag("bytes", msg.len());
        self.check_qp(qp)?;
        self.inject_verb_fault("send", msg.len())?;
        let msg_len = msg.len() as u64;
        self.clock.advance(self.cost.rdma.transfer(msg.len()));
        let mut inner = self.inner.lock();
        let state = inner
            .qps
            .get_mut(&qp.qp)
            .ok_or(DmemError::RegionNotRegistered)?;
        debug_assert!(
            qp.local == state.a || qp.local == state.b,
            "queue pair handle endpoint mismatch"
        );
        let seq = if qp.local == state.a {
            state.to_b.push_back(msg);
            state.seq_from_a += 1;
            state.seq_from_a
        } else {
            state.to_a.push_back(msg);
            state.seq_from_b += 1;
            state.seq_from_b
        };
        self.metrics.counter("net.send.ops").inc();
        self.metrics.counter("net.send.bytes").add(msg_len);
        self.charge_tenant(msg_len);
        self.route_shard(qp.local, qp.peer);
        Ok(seq)
    }

    /// Two-sided RECV: dequeues the next message addressed to this
    /// endpoint, if any. Receiving does not advance the clock (the message
    /// already paid its transfer on send).
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::RegionNotRegistered`] for an unknown queue
    /// pair.
    pub fn recv(&self, qp: &QpHandle) -> DmemResult<Option<Vec<u8>>> {
        let mut inner = self.inner.lock();
        let state = inner
            .qps
            .get_mut(&qp.qp)
            .ok_or(DmemError::RegionNotRegistered)?;
        let msg = if qp.local == state.a {
            state.to_a.pop_front()
        } else {
            state.to_b.pop_front()
        };
        if let Some(msg) = &msg {
            // Symmetric to send: count delivered messages and bytes.
            self.metrics.counter("net.recv.ops").inc();
            self.metrics.counter("net.recv.bytes").add(msg.len() as u64);
        }
        Ok(msg)
    }

    fn post_transfer(
        &self,
        qp: &QpHandle,
        kind: CompletionKind,
        data: Vec<u8>,
        bytes: usize,
    ) -> u64 {
        // Submission itself is a doorbell write: ~100 ns of CPU.
        self.clock.advance(dmem_sim::SimDuration::from_nanos(100));
        let wr_id = self.fresh_id();
        let mut inner = self.inner.lock();
        let now = self.clock.now();
        let start = inner
            .busy_until
            .get(&qp.qp)
            .copied()
            .unwrap_or(SimInstant::EPOCH)
            .max(now);
        let done = start + self.cost.rdma.transfer(bytes);
        // Posted transfers overlap the caller's compute, so they become
        // async spans (timeline-only, excluded from attribution) with the
        // bandwidth-queueing delay made explicit.
        self.clock.tracer().record_async(
            "net",
            match kind {
                CompletionKind::Write => "post_write.transfer",
                CompletionKind::Read => "post_read.transfer",
            },
            now,
            done,
            &[("bytes", bytes as u64), ("queued_ns", (start - now).as_nanos())],
        );
        inner.busy_until.insert(qp.qp, done);
        inner
            .cqs
            .entry(qp.qp)
            .or_default()
            .push((done, Completion { wr_id, kind, data }));
        drop(inner);
        // Posted verbs enter the mailbox at submission time — the key
        // stream per shard pair follows doorbell order, like the NIC.
        self.route_shard(qp.local, qp.peer);
        wr_id
    }

    /// Asynchronous one-sided WRITE (§IV-G: "no blocking during a
    /// transfer"): validates and applies the write, charges only the
    /// submission cost now, and delivers a [`Completion`] once the link
    /// has carried the bytes. Posted transfers on one queue pair
    /// serialize on link bandwidth but overlap with the caller's compute.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fabric::write`].
    pub fn post_write(
        &self,
        qp: &QpHandle,
        data: &[u8],
        region: &RegionHandle,
        offset: u64,
    ) -> DmemResult<u64> {
        self.one_sided_access(qp, region, offset, data.len())?;
        {
            let mut inner = self.inner.lock();
            let r = inner
                .regions
                .get_mut(&region.mr)
                .ok_or(DmemError::RegionNotRegistered)?;
            let start = offset as usize;
            r.buf[start..start + data.len()].copy_from_slice(data);
        }
        self.metrics.counter("net.write.ops").inc();
        self.metrics.counter("net.write.bytes").add(data.len() as u64);
        self.charge_tenant(data.len() as u64);
        Ok(self.post_transfer(qp, CompletionKind::Write, Vec::new(), data.len()))
    }

    /// Asynchronous one-sided READ: the payload arrives with the
    /// completion.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fabric::read`].
    pub fn post_read(
        &self,
        qp: &QpHandle,
        region: &RegionHandle,
        offset: u64,
        len: usize,
    ) -> DmemResult<u64> {
        self.one_sided_access(qp, region, offset, len)?;
        let data = {
            let inner = self.inner.lock();
            let r = inner
                .regions
                .get(&region.mr)
                .ok_or(DmemError::RegionNotRegistered)?;
            let start = offset as usize;
            r.buf[start..start + len].to_vec()
        };
        self.metrics.counter("net.read.ops").inc();
        self.metrics.counter("net.read.bytes").add(len as u64);
        self.charge_tenant(len as u64);
        Ok(self.post_transfer(qp, CompletionKind::Read, data, len))
    }

    /// Drains completions whose transfers have finished by now.
    pub fn poll_cq(&self, qp: &QpHandle) -> Vec<Completion> {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let Some(cq) = inner.cqs.get_mut(&qp.qp) else {
            return Vec::new();
        };
        let mut ready = Vec::new();
        cq.retain(|(at, completion)| {
            if *at <= now {
                ready.push(completion.clone());
                false
            } else {
                true
            }
        });
        ready.sort_by_key(|c| c.wr_id);
        ready
    }

    /// Blocks (in virtual time) until every posted transfer on `qp` has
    /// completed, returning the drained completions.
    pub fn wait_cq(&self, qp: &QpHandle) -> Vec<Completion> {
        let target = {
            let inner = self.inner.lock();
            inner.busy_until.get(&qp.qp).copied()
        };
        if let Some(t) = target {
            self.clock.advance_to(t);
        }
        self.poll_cq(qp)
    }
}

impl fmt::Debug for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Fabric")
            .field("regions", &inner.regions.len())
            .field("qps", &inner.qps.len())
            .finish()
    }
}

// Small mixing helper so rkeys are not guessable from MrIds in tests.
fn u64_rotate(x: u64) -> u64 {
    x.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::FailureEvent;

    fn fabric() -> (SimClock, FailureInjector, Fabric) {
        let clock = SimClock::new();
        let failures = FailureInjector::new(clock.clone());
        let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures.clone());
        (clock, failures, fabric)
    }

    #[test]
    fn write_read_roundtrip() {
        let (_, _, f) = fabric();
        let mr = f.register(NodeId::new(1), ByteSize::from_kib(8)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        f.write(&qp, b"hello", &mr, 100).unwrap();
        assert_eq!(f.read(&qp, &mr, 100, 5).unwrap(), b"hello");
    }

    #[test]
    fn verbs_charge_time() {
        let (clock, _, f) = fabric();
        let mr = f.register(NodeId::new(1), ByteSize::from_kib(8)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        let before = clock.now();
        f.write(&qp, &[0u8; 4096], &mr, 0).unwrap();
        let elapsed = clock.now() - before;
        // 4 KiB at 5 GB/s + 1.8 us base ≈ 2.6 us.
        assert!(elapsed.as_micros_f64() > 2.0 && elapsed.as_micros_f64() < 4.0);
    }

    #[test]
    fn batched_transfer_cheaper_than_many_small() {
        let (clock, _, f) = fabric();
        let mr = f.register(NodeId::new(1), ByteSize::from_mib(1)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        let t0 = clock.now();
        f.write(&qp, &vec![0u8; 32 * 4096], &mr, 0).unwrap();
        let batched = clock.now() - t0;
        let t1 = clock.now();
        for i in 0..32 {
            f.write(&qp, &vec![0u8; 4096], &mr, i * 4096).unwrap();
        }
        let separate = clock.now() - t1;
        assert!(batched < separate);
    }

    #[test]
    fn wrong_rkey_denied() {
        let (_, _, f) = fabric();
        let mr = f.register(NodeId::new(1), ByteSize::from_kib(4)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        let forged = RegionHandle { rkey: mr.rkey ^ 1, ..mr };
        assert_eq!(f.write(&qp, b"x", &forged, 0), Err(DmemError::AccessDenied));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (_, _, f) = fabric();
        let mr = f.register(NodeId::new(1), ByteSize::from_kib(4)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(matches!(
            f.write(&qp, &[0u8; 16], &mr, 4090),
            Err(DmemError::RegionOutOfBounds { .. })
        ));
        assert!(matches!(
            f.read(&qp, &mr, u64::MAX, 16),
            Err(DmemError::RegionOutOfBounds { .. })
        ));
    }

    #[test]
    fn deregistered_region_faults() {
        let (_, _, f) = fabric();
        let mr = f.register(NodeId::new(1), ByteSize::from_kib(4)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        f.deregister(&mr).unwrap();
        assert_eq!(f.read(&qp, &mr, 0, 1), Err(DmemError::RegionNotRegistered));
        assert_eq!(f.deregister(&mr), Err(DmemError::RegionNotRegistered));
        assert_eq!(f.registered_bytes(NodeId::new(1)), ByteSize::ZERO);
    }

    #[test]
    fn region_must_belong_to_peer() {
        let (_, _, f) = fabric();
        // Region on node 2, but QP connects 0 <-> 1.
        let mr = f.register(NodeId::new(2), ByteSize::from_kib(4)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(f.write(&qp, b"x", &mr, 0), Err(DmemError::AccessDenied));
    }

    #[test]
    fn send_recv_preserves_order_and_boundaries() {
        let (_, _, f) = fabric();
        let qp_a = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        let qp_b = f.peer_handle(&qp_a);
        f.send(&qp_a, vec![1]).unwrap();
        f.send(&qp_a, vec![2, 2]).unwrap();
        f.send(&qp_b, vec![9]).unwrap(); // reverse direction independent
        assert_eq!(f.recv(&qp_b).unwrap(), Some(vec![1]));
        assert_eq!(f.recv(&qp_b).unwrap(), Some(vec![2, 2]));
        assert_eq!(f.recv(&qp_b).unwrap(), None, "at-most-once: nothing left");
        assert_eq!(f.recv(&qp_a).unwrap(), Some(vec![9]));
    }

    #[test]
    fn link_failure_blocks_verbs() {
        let (_, failures, f) = fabric();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let mr = f.register(b, ByteSize::from_kib(4)).unwrap();
        let qp = f.connect(a, b).unwrap();
        failures.inject_now(FailureEvent::LinkDown(a, b));
        assert_eq!(
            f.write(&qp, b"x", &mr, 0),
            Err(DmemError::LinkDown { from: a, to: b })
        );
        failures.inject_now(FailureEvent::LinkUp(a, b));
        assert!(f.write(&qp, b"x", &mr, 0).is_ok());
    }

    #[test]
    fn node_failure_blocks_everything() {
        let (_, failures, f) = fabric();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let mr = f.register(b, ByteSize::from_kib(4)).unwrap();
        let qp = f.connect(a, b).unwrap();
        failures.inject_now(FailureEvent::NodeDown(b));
        assert_eq!(f.read(&qp, &mr, 0, 1), Err(DmemError::NodeUnavailable(b)));
        assert_eq!(
            f.register(b, ByteSize::from_kib(4)),
            Err(DmemError::NodeUnavailable(b))
        );
        assert!(f.connect(a, b).is_err());
    }

    #[test]
    fn disconnect_blocks_qp() {
        let (_, _, f) = fabric();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        f.disconnect(&qp).unwrap();
        assert!(matches!(f.send(&qp, vec![1]), Err(DmemError::LinkDown { .. })));
    }

    #[test]
    fn async_verbs_do_not_block_the_caller() {
        let (clock, _, f) = fabric();
        let mr = f.register(NodeId::new(1), ByteSize::from_mib(1)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        let t0 = clock.now();
        let wr = f.post_write(&qp, &vec![7u8; 64 * 1024], &mr, 0).unwrap();
        let submit_cost = clock.now() - t0;
        // Posting costs a doorbell, not the 14+ us transfer.
        assert!(submit_cost.as_micros_f64() < 1.0, "post blocked: {submit_cost}");
        // Not complete yet…
        assert!(f.poll_cq(&qp).is_empty());
        // …until the transfer time has elapsed.
        clock.advance(f.cost_model().rdma.transfer(64 * 1024));
        let completions = f.poll_cq(&qp);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].wr_id, wr);
        assert_eq!(completions[0].kind, CompletionKind::Write);
        // The data landed (applied at post time in the simulator).
        assert_eq!(f.read(&qp, &mr, 0, 4).unwrap(), vec![7u8; 4]);
    }

    #[test]
    fn posted_transfers_serialize_on_link_bandwidth() {
        let (clock, _, f) = fabric();
        let mr = f.register(NodeId::new(1), ByteSize::from_mib(4)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        let one = f.cost_model().rdma.transfer(1 << 20);
        let t0 = clock.now();
        f.post_write(&qp, &vec![1u8; 1 << 20], &mr, 0).unwrap();
        f.post_write(&qp, &vec![2u8; 1 << 20], &mr, 1 << 20).unwrap();
        // After one transfer time only the first is complete.
        clock.advance(one);
        assert_eq!(f.poll_cq(&qp).len(), 1);
        // wait_cq drains the rest, advancing to the link's busy horizon.
        let rest = f.wait_cq(&qp);
        assert_eq!(rest.len(), 1);
        let elapsed = clock.now() - t0;
        assert!(elapsed >= one * 2, "two 1 MiB transfers share one link");
    }

    #[test]
    fn post_read_delivers_payload_with_completion() {
        let (clock, _, f) = fabric();
        let mr = f.register(NodeId::new(1), ByteSize::from_kib(8)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        f.write(&qp, b"payload", &mr, 32).unwrap();
        let wr = f.post_read(&qp, &mr, 32, 7).unwrap();
        let completions = f.wait_cq(&qp);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].wr_id, wr);
        assert_eq!(completions[0].kind, CompletionKind::Read);
        assert_eq!(completions[0].data, b"payload");
        let _ = clock;
    }

    #[test]
    fn post_validates_like_sync_verbs() {
        let (_, failures, f) = fabric();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let mr = f.register(b, ByteSize::from_kib(4)).unwrap();
        let qp = f.connect(a, b).unwrap();
        assert!(matches!(
            f.post_write(&qp, &[0u8; 16], &mr, 4090),
            Err(DmemError::RegionOutOfBounds { .. })
        ));
        let forged = RegionHandle { rkey: mr.rkey ^ 1, ..mr };
        assert_eq!(f.post_read(&qp, &forged, 0, 1), Err(DmemError::AccessDenied));
        failures.inject_now(FailureEvent::LinkDown(a, b));
        assert!(matches!(
            f.post_write(&qp, &[1], &mr, 0),
            Err(DmemError::LinkDown { .. })
        ));
    }

    #[test]
    fn send_recv_counters_symmetric() {
        let (_, _, f) = fabric();
        let qp_a = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        let qp_b = f.peer_handle(&qp_a);
        f.send(&qp_a, vec![0; 48]).unwrap();
        f.send(&qp_a, vec![0; 16]).unwrap();
        assert_eq!(f.recv(&qp_b).unwrap().unwrap().len(), 48);
        // An empty poll must not count as a delivery.
        assert_eq!(f.recv(&qp_a).unwrap(), None);
        assert_eq!(f.metrics().counter("net.send.ops").get(), 2);
        assert_eq!(f.metrics().counter("net.send.bytes").get(), 64);
        assert_eq!(f.metrics().counter("net.recv.ops").get(), 1);
        assert_eq!(f.metrics().counter("net.recv.bytes").get(), 48);
        assert_eq!(f.recv(&qp_b).unwrap().unwrap().len(), 16);
        assert_eq!(f.metrics().counter("net.recv.bytes").get(), 64);
    }

    #[test]
    fn verbs_emit_spans_and_latency_histograms() {
        let (clock, _, f) = fabric();
        clock.tracer().enable();
        let mr = f.register(NodeId::new(1), ByteSize::from_kib(8)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        f.write(&qp, &[0u8; 4096], &mr, 0).unwrap();
        f.read(&qp, &mr, 0, 4096).unwrap();
        f.post_write(&qp, &[1u8; 4096], &mr, 0).unwrap();
        f.wait_cq(&qp);
        let trace = clock.tracer().finish();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"register"));
        assert!(names.contains(&"write"));
        assert!(names.contains(&"read"));
        assert!(names.contains(&"post_write.transfer"));
        // Sync verb spans carry their virtual cost; histograms agree.
        let write = trace.spans.iter().find(|s| s.name == "write").unwrap();
        assert_eq!(
            f.metrics().histogram("net.write.ns").summary().count,
            1
        );
        assert!(write.duration().as_nanos() > 0);
        let post = trace
            .spans
            .iter()
            .find(|s| s.name == "post_write.transfer")
            .unwrap();
        assert_eq!(post.kind, dmem_sim::SpanKind::Async);
    }

    #[test]
    fn tenant_scope_attributes_verbs_only_while_set() {
        let (_, _, f) = fabric();
        let mr = f.register(NodeId::new(1), ByteSize::from_kib(8)).unwrap();
        let qp = f.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        // Unscoped traffic creates no tenant keys at all.
        f.write(&qp, &[0u8; 100], &mr, 0).unwrap();
        assert!(f
            .metrics()
            .counter_snapshot()
            .iter()
            .all(|(k, _)| !k.starts_with("net.tenant-")));

        f.set_tenant_scope(Some(TenantId::new(3)));
        assert_eq!(f.tenant_scope(), Some(TenantId::new(3)));
        f.write(&qp, &[0u8; 64], &mr, 0).unwrap();
        f.read(&qp, &mr, 0, 36).unwrap();
        f.set_tenant_scope(None);
        assert_eq!(f.tenant_scope(), None);
        f.write(&qp, &[0u8; 500], &mr, 0).unwrap();

        assert_eq!(f.metrics().counter("net.tenant-3.ops").get(), 2);
        assert_eq!(f.metrics().counter("net.tenant-3.bytes").get(), 100);
        // Clones share the scope.
        let clone = f.clone();
        clone.set_tenant_scope(Some(TenantId::new(7)));
        assert_eq!(f.tenant_scope(), Some(TenantId::new(7)));
    }

    #[test]
    fn registration_accounting() {
        let (_, _, f) = fabric();
        let n = NodeId::new(4);
        let _mr1 = f.register(n, ByteSize::from_mib(1)).unwrap();
        let mr2 = f.register(n, ByteSize::from_mib(2)).unwrap();
        assert_eq!(f.registered_bytes(n), ByteSize::from_mib(3));
        f.deregister(&mr2).unwrap();
        assert_eq!(f.registered_bytes(n), ByteSize::from_mib(1));
        assert_eq!(f.metrics().counter("net.mr.registered").get(), 2);
    }
}
