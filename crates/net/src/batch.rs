//! Window-based message batching (paper §IV-H).
//!
//! DAHI batches `d` messages of size `m` into one RDMA transfer; FastSwap
//! batches swap-out pages the same way. Batching converts `d` base
//! latencies into one, which dominates for small messages on a
//! high-bandwidth fabric.

use crate::fabric::{Fabric, QpHandle, RegionHandle};
use dmem_types::{DmemError, DmemResult};

/// Accumulates fixed-size messages and flushes them to a remote region in
/// one RDMA WRITE per full window.
///
/// The sender writes sequentially into the region starting at a base
/// offset, which matches how the paper's send-buffer pool hands slabs to
/// the remote receive-buffer pool.
///
/// # Examples
///
/// ```
/// use dmem_net::{BatchSender, Fabric};
/// use dmem_sim::{CostModel, FailureInjector, SimClock};
/// use dmem_types::{ByteSize, NodeId};
///
/// let clock = SimClock::new();
/// let fabric = Fabric::new(clock.clone(), CostModel::paper_default(),
///                          FailureInjector::new(clock.clone()));
/// let mr = fabric.register(NodeId::new(1), ByteSize::from_kib(64))?;
/// let qp = fabric.connect(NodeId::new(0), NodeId::new(1))?;
///
/// let mut sender = BatchSender::new(qp, mr, 4, 8192); // window 4 × 8 KiB
/// for chunk in 0..4u8 {
///     sender.push(&fabric, vec![chunk; 8192])?; // 4th push flushes
/// }
/// assert_eq!(sender.flushed_windows(), 1);
/// # Ok::<(), dmem_types::DmemError>(())
/// ```
#[derive(Debug)]
pub struct BatchSender {
    qp: QpHandle,
    region: RegionHandle,
    window: usize,
    message_size: usize,
    pending: Vec<Vec<u8>>,
    next_offset: u64,
    region_capacity_hint: Option<u64>,
    flushed_windows: u64,
    messages_sent: u64,
}

impl BatchSender {
    /// Creates a sender batching `window` messages of at most
    /// `message_size` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `message_size` is zero.
    pub fn new(qp: QpHandle, region: RegionHandle, window: usize, message_size: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        assert!(message_size > 0, "message size must be nonzero");
        BatchSender {
            qp,
            region,
            window,
            message_size,
            pending: Vec::with_capacity(window),
            next_offset: 0,
            region_capacity_hint: None,
            flushed_windows: 0,
            messages_sent: 0,
        }
    }

    /// Number of full windows flushed so far.
    pub fn flushed_windows(&self) -> u64 {
        self.flushed_windows
    }

    /// Total messages transmitted (flushed) so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages currently waiting for the window to fill.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Next write offset in the remote region.
    pub fn next_offset(&self) -> u64 {
        self.next_offset
    }

    /// Queues one message; flushes automatically when the window fills.
    ///
    /// Returns the remote offset range `(start, len)` of the flushed batch
    /// when a flush happened.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors from the flush; the window is retained so
    /// the caller can retry after recovery. Returns
    /// [`DmemError::InvalidConfig`] if `msg` exceeds the message size.
    pub fn push(&mut self, fabric: &Fabric, msg: Vec<u8>) -> DmemResult<Option<(u64, usize)>> {
        if msg.len() > self.message_size {
            return Err(DmemError::InvalidConfig {
                reason: format!(
                    "message of {} bytes exceeds batch message size {}",
                    msg.len(),
                    self.message_size
                ),
            });
        }
        self.pending.push(msg);
        if self.pending.len() >= self.window {
            self.flush(fabric).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Flushes pending messages (padding each to the fixed message size)
    /// in a single RDMA WRITE. No-op on an empty window.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors; pending messages are retained for retry.
    pub fn flush(&mut self, fabric: &Fabric) -> DmemResult<(u64, usize)> {
        if self.pending.is_empty() {
            return Ok((self.next_offset, 0));
        }
        let mut buf = Vec::with_capacity(self.pending.len() * self.message_size);
        for msg in &self.pending {
            buf.extend_from_slice(msg);
            buf.resize(buf.len() + (self.message_size - msg.len()), 0);
        }
        let start = self.next_offset;
        fabric.write(&self.qp, &buf, &self.region, start)?;
        let count = self.pending.len();
        self.pending.clear();
        self.next_offset = start + buf.len() as u64;
        self.flushed_windows += 1;
        self.messages_sent += count as u64;
        // Wrap to the start when the next window would not fit; the
        // receive pool is consumed as a ring in steady state.
        if let Some(cap) = self.region_capacity_hint {
            if self.next_offset + (self.window * self.message_size) as u64 > cap {
                self.next_offset = 0;
            }
        }
        Ok((start, buf.len()))
    }

    /// Declares the remote region capacity so the sender wraps its write
    /// cursor ring-buffer style instead of running off the end.
    pub fn set_region_capacity(&mut self, capacity: u64) {
        self.region_capacity_hint = Some(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::{CostModel, FailureInjector, SimClock};
    use dmem_types::{ByteSize, NodeId};

    fn setup(region_kib: u64) -> (SimClock, Fabric, QpHandle, RegionHandle) {
        let clock = SimClock::new();
        let fabric = Fabric::new(
            clock.clone(),
            CostModel::paper_default(),
            FailureInjector::new(clock.clone()),
        );
        let mr = fabric
            .register(NodeId::new(1), ByteSize::from_kib(region_kib))
            .unwrap();
        let qp = fabric.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        (clock, fabric, qp, mr)
    }

    #[test]
    fn window_fill_triggers_flush() {
        let (_, fabric, qp, mr) = setup(64);
        let mut sender = BatchSender::new(qp, mr, 3, 1024);
        assert!(sender.push(&fabric, vec![1; 1024]).unwrap().is_none());
        assert!(sender.push(&fabric, vec![2; 1024]).unwrap().is_none());
        let flushed = sender.push(&fabric, vec![3; 1024]).unwrap();
        assert_eq!(flushed, Some((0, 3 * 1024)));
        assert_eq!(sender.pending_len(), 0);
        assert_eq!(sender.messages_sent(), 3);
    }

    #[test]
    fn flushed_data_lands_in_region() {
        let (_, fabric, qp, mr) = setup(64);
        let mut sender = BatchSender::new(qp, mr, 2, 16);
        sender.push(&fabric, vec![0xAA; 16]).unwrap();
        sender.push(&fabric, vec![0xBB; 8]).unwrap(); // short: padded
        let got = fabric.read(&qp, &mr, 0, 32).unwrap();
        assert_eq!(&got[..16], &[0xAA; 16]);
        assert_eq!(&got[16..24], &[0xBB; 8]);
        assert_eq!(&got[24..32], &[0u8; 8], "padding is zeroed");
    }

    #[test]
    fn batching_saves_time_vs_singles() {
        let (clock, fabric, qp, mr) = setup(1024);
        let mut batched = BatchSender::new(qp, mr, 16, 8192);
        let t0 = clock.now();
        for _ in 0..16 {
            batched.push(&fabric, vec![7; 8192]).unwrap();
        }
        let batched_cost = clock.now() - t0;

        let t1 = clock.now();
        let mut single = BatchSender::new(qp, mr, 1, 8192);
        for _ in 0..16 {
            single.push(&fabric, vec![7; 8192]).unwrap();
        }
        let single_cost = clock.now() - t1;
        assert!(
            batched_cost < single_cost,
            "batched {batched_cost} >= single {single_cost}"
        );
    }

    #[test]
    fn oversized_message_rejected() {
        let (_, fabric, qp, mr) = setup(64);
        let mut sender = BatchSender::new(qp, mr, 2, 128);
        assert!(matches!(
            sender.push(&fabric, vec![0; 129]),
            Err(DmemError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn explicit_flush_of_partial_window() {
        let (_, fabric, qp, mr) = setup(64);
        let mut sender = BatchSender::new(qp, mr, 8, 512);
        sender.push(&fabric, vec![5; 512]).unwrap();
        let (start, len) = sender.flush(&fabric).unwrap();
        assert_eq!((start, len), (0, 512));
        // Empty flush is a no-op at the new offset.
        assert_eq!(sender.flush(&fabric).unwrap(), (512, 0));
    }

    #[test]
    fn ring_wrap_with_capacity_hint() {
        let (_, fabric, qp, mr) = setup(4); // 4 KiB region
        let mut sender = BatchSender::new(qp, mr, 2, 1024);
        sender.set_region_capacity(4096);
        for i in 0..4u8 {
            sender.push(&fabric, vec![i; 1024]).unwrap();
        }
        // Two windows of 2 KiB fill the region; cursor wrapped to 0.
        assert_eq!(sender.next_offset(), 0);
        sender.push(&fabric, vec![9; 1024]).unwrap();
        sender.push(&fabric, vec![9; 1024]).unwrap();
        assert_eq!(sender.flushed_windows(), 3);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let (_, _, qp, mr) = setup(4);
        let _ = BatchSender::new(qp, mr, 0, 1024);
    }
}
