//! Deterministic fabric fault injection (ROADMAP "failure semantics").
//!
//! The paper's survey chapters single out fault tolerance of the
//! far-memory path as the hardest open problem: a fabric that silently
//! never fails hides every bug in the recovery code above it. This module
//! supplies the missing adversary — a seeded, virtual-clock-scheduled
//! fault layer the [`crate::Fabric`] consults on every verb — plus the
//! retry policy the fabric uses to survive it.
//!
//! Everything is deterministic: outcomes come from a [`DetRng`] fork, so
//! the same seed produces the same drops, delays, partitions and QP
//! breaks, run after run and across parallel chaos jobs.
//!
//! The layer is strictly opt-in. A fabric without an installed
//! [`FabricFaults`] performs zero extra RNG draws, zero extra clock
//! advances and creates zero extra metric keys, keeping fault-free runs
//! byte-identical to builds that predate this module.

use dmem_sim::{DetRng, SimDuration, SimInstant};
use dmem_types::NodeId;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::fmt;

/// Per-verb fault probabilities.
///
/// Probabilities are evaluated per verb attempt from the layer's seeded
/// RNG; they are independent of link or payload (the simulated fabric is
/// symmetric, and per-link skew would only thin each probability out).
#[derive(Debug, Clone, Copy)]
pub struct FaultProfile {
    /// Probability a verb is dropped on the wire (the caller observes a
    /// timeout after the transfer budget burns).
    pub drop: f64,
    /// Probability a verb is delayed by a uniform extra latency.
    pub delay: f64,
    /// Upper bound for the injected delay.
    pub max_delay: SimDuration,
    /// Probability a verb is duplicated (the wire carries it twice; verbs
    /// are idempotent at this layer, so only the time cost doubles).
    pub duplicate: f64,
}

impl FaultProfile {
    /// The profile the chaos `--faults` mode runs: 2% drop, 5% delay of
    /// up to 20 µs, 1% duplication. High enough that every seed retries,
    /// low enough that a 5-attempt policy fails a verb on an *up* path
    /// with probability ~3e-9 (which would falsely trip the durability
    /// invariant).
    pub fn chaos_default() -> Self {
        FaultProfile {
            drop: 0.02,
            delay: 0.05,
            max_delay: SimDuration::from_micros(20),
            duplicate: 0.01,
        }
    }

    /// All probabilities zero: the layer is installed (retries armed, QP
    /// breaks and partitions honoured) but no verb-level noise fires.
    pub fn none() -> Self {
        FaultProfile {
            drop: 0.0,
            delay: 0.0,
            max_delay: SimDuration::ZERO,
            duplicate: 0.0,
        }
    }
}

/// Verb-level retry policy: capped exponential backoff with jitter, all
/// on the virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per verb (first try included). Always ≥ 1.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Backoff growth cap.
    pub max_backoff: SimDuration,
    /// Overall per-verb deadline: once this much virtual time has passed
    /// since the first attempt, the verb fails with a timeout even if
    /// attempts remain.
    pub op_timeout: SimDuration,
}

impl Default for RetryPolicy {
    /// 5 attempts, 10 µs doubling to a 160 µs cap, 2 ms per-verb
    /// deadline — roughly the RC retransmit budget of a real NIC scaled
    /// to the cost model's microsecond fabric.
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_backoff: SimDuration::from_micros(10),
            max_backoff: SimDuration::from_micros(160),
            op_timeout: SimDuration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// The deterministic (un-jittered) backoff before retry number
    /// `attempt` (0-based): `base · 2^attempt`, capped at
    /// [`RetryPolicy::max_backoff`].
    ///
    /// With the default policy the sequence is 10, 20, 40, 80, 160,
    /// 160, … µs.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let grown = self
            .base_backoff
            .as_nanos()
            .saturating_shl(attempt.min(32))
            .max(self.base_backoff.as_nanos());
        SimDuration::from_nanos(grown.min(self.max_backoff.as_nanos()))
    }
}

/// A scheduled fabric fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricFault {
    /// Sever all traffic between a host pair (both directions) until the
    /// matching [`FabricFault::Heal`].
    Partition {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Lift a previously injected partition of the pair.
    Heal {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Transition every established queue pair between the hosts to the
    /// error state; traffic resumes only after the connection manager
    /// re-establishes fresh queue pairs.
    BreakQps {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

impl fmt::Display for FabricFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricFault::Partition { a, b } => write!(f, "partition {a}<->{b}"),
            FabricFault::Heal { a, b } => write!(f, "heal {a}<->{b}"),
            FabricFault::BreakQps { a, b } => write!(f, "break-qps {a}<->{b}"),
        }
    }
}

/// The fate the fault layer assigns one verb attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerbOutcome {
    /// Delivered normally.
    Deliver,
    /// Lost on the wire: the transfer budget burns, then a timeout.
    Drop,
    /// Delivered after an extra injected latency.
    Delay(SimDuration),
    /// Delivered, but the wire carried it twice (double transfer cost).
    Duplicate,
}

/// Interior state behind one mutex so outcome draws, pending events and
/// the partition set mutate atomically and deterministically.
struct FaultState {
    rng: DetRng,
    /// Scheduled faults, sorted by due instant (stable for equal times).
    pending: Vec<(SimInstant, FabricFault)>,
    /// Currently partitioned host pairs, stored with endpoints ordered.
    partitions: BTreeSet<(NodeId, NodeId)>,
}

/// The seeded fault layer a [`crate::Fabric`] consults on every verb.
///
/// Install with [`crate::Fabric::install_faults`]; at most one layer per
/// fabric, for the whole run (mirroring the QoS engine's install
/// contract).
pub struct FabricFaults {
    profile: FaultProfile,
    retry: RetryPolicy,
    state: Mutex<FaultState>,
}

/// Normalizes a host pair so `(a, b)` and `(b, a)` name the same link.
fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl FabricFaults {
    /// Creates a layer drawing outcomes and jitter from `rng`.
    pub fn new(rng: DetRng, profile: FaultProfile, retry: RetryPolicy) -> Self {
        FabricFaults {
            profile,
            retry,
            state: Mutex::new(FaultState {
                rng,
                pending: Vec::new(),
                partitions: BTreeSet::new(),
            }),
        }
    }

    /// The retry policy verbs run under while this layer is installed.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// The verb fault profile in force.
    pub fn profile(&self) -> FaultProfile {
        self.profile
    }

    /// Schedules `fault` to fire once the virtual clock reaches `at`.
    /// Faults are applied lazily, the next time the fabric validates a
    /// path at or after that instant.
    pub fn schedule(&self, at: SimInstant, fault: FabricFault) {
        let mut state = self.state.lock();
        let pos = state.pending.partition_point(|(due, _)| *due <= at);
        state.pending.insert(pos, (at, fault));
    }

    /// Drains every fault due at or before `now`, applying partition and
    /// heal transitions to the layer's own pair set, and returns the
    /// drained faults in firing order so the fabric can apply QP breaks
    /// and count what fired.
    pub fn take_due(&self, now: SimInstant) -> Vec<FabricFault> {
        let mut state = self.state.lock();
        if state.pending.is_empty() {
            return Vec::new();
        }
        let upto = state.pending.partition_point(|(due, _)| *due <= now);
        let due: Vec<FabricFault> =
            state.pending.drain(..upto).map(|(_, fault)| fault).collect();
        for fault in &due {
            match *fault {
                FabricFault::Partition { a, b } => {
                    state.partitions.insert(ordered(a, b));
                }
                FabricFault::Heal { a, b } => {
                    state.partitions.remove(&ordered(a, b));
                }
                FabricFault::BreakQps { .. } => {}
            }
        }
        due
    }

    /// Whether faults remain scheduled but not yet applied.
    pub fn pending_len(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Partitions the pair immediately. Returns `false` if it already was.
    pub fn partition_now(&self, a: NodeId, b: NodeId) -> bool {
        self.state.lock().partitions.insert(ordered(a, b))
    }

    /// Heals the pair immediately. Returns `false` if it was not
    /// partitioned.
    pub fn heal_now(&self, a: NodeId, b: NodeId) -> bool {
        self.state.lock().partitions.remove(&ordered(a, b))
    }

    /// Whether the pair is currently partitioned.
    pub fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.state.lock().partitions.contains(&ordered(a, b))
    }

    /// Number of host pairs currently partitioned.
    pub fn active_partitions(&self) -> usize {
        self.state.lock().partitions.len()
    }

    /// Draws the fate of one verb attempt from the seeded stream.
    pub fn verb_outcome(&self) -> VerbOutcome {
        let p = self.profile;
        let mut state = self.state.lock();
        let roll = state.rng.unit();
        if roll < p.drop {
            VerbOutcome::Drop
        } else if roll < p.drop + p.delay {
            let span = p.max_delay.as_nanos().max(1) as usize;
            let extra = 1 + state.rng.below(span) as u64;
            VerbOutcome::Delay(SimDuration::from_nanos(extra))
        } else if roll < p.drop + p.delay + p.duplicate {
            VerbOutcome::Duplicate
        } else {
            VerbOutcome::Deliver
        }
    }

    /// The jittered backoff before retry `attempt` (0-based): half the
    /// deterministic [`RetryPolicy::backoff`] plus a uniform draw over
    /// the other half ("equal jitter"), so concurrent retries decorrelate
    /// while the expected wait keeps the exponential shape.
    pub fn jittered_backoff(&self, attempt: u32) -> SimDuration {
        let full = self.retry.backoff(attempt).as_nanos();
        let half = full / 2;
        let jitter = self.state.lock().rng.below((full - half + 1) as usize) as u64;
        SimDuration::from_nanos(half + jitter)
    }
}

impl fmt::Debug for FabricFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("FabricFaults")
            .field("profile", &self.profile)
            .field("retry", &self.retry)
            .field("pending", &state.pending.len())
            .field("partitions", &state.partitions.len())
            .finish()
    }
}

/// One host outage window in a sharded rack simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostOutage {
    /// The host that goes down.
    pub host: usize,
    /// When the host stops answering.
    pub from: SimInstant,
    /// When the host is back (exclusive: answering again at this time).
    pub until: SimInstant,
}

/// A deterministic host-outage schedule for the sharded rack model.
///
/// The sharded engine cannot share one [`FabricFaults`] stream across
/// shards (a shared RNG would couple shard execution order to draw
/// order), so rack-scale fault schedules are generated *up front* from
/// the root seed and dealt to each host's owning shard — every shard
/// sees exactly the outages of its own hosts, no cross-shard draws ever
/// happen, and the schedule is identical at every worker count.
///
/// # Examples
///
/// ```
/// use dmem_net::ShardFaultSchedule;
/// use dmem_sim::SimDuration;
///
/// let horizon = SimDuration::from_millis(1);
/// let schedule = ShardFaultSchedule::generate(7, 64, horizon, 0.25);
/// let again = ShardFaultSchedule::generate(7, 64, horizon, 0.25);
/// assert_eq!(schedule.outages(), again.outages());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFaultSchedule {
    outages: Vec<HostOutage>,
}

impl ShardFaultSchedule {
    /// Generates the outage schedule: each host independently suffers at
    /// most one outage with probability `outage_fraction`, starting
    /// uniformly inside the first half of `horizon` and lasting a
    /// uniform 5–20% of `horizon` (clamped to end before `horizon`, so
    /// runs always finish with every host back up and suspects can
    /// resolve). Outages are listed in host order.
    pub fn generate(
        root_seed: u64,
        hosts: usize,
        horizon: SimDuration,
        outage_fraction: f64,
    ) -> Self {
        let root = DetRng::new(root_seed);
        let mut outages = Vec::new();
        for host in 0..hosts {
            let mut rng = root.fork_indexed("rack.outage", host as u64);
            if !rng.chance(outage_fraction) {
                continue;
            }
            let h = horizon.as_nanos();
            let from = rng.below((h / 2).max(1) as usize) as u64;
            let len = h / 20 + rng.below((h * 3 / 20).max(1) as usize) as u64;
            let until = (from + len).min(h.saturating_sub(1));
            if until <= from {
                continue;
            }
            outages.push(HostOutage {
                host,
                from: SimInstant::from_nanos(from),
                until: SimInstant::from_nanos(until),
            });
        }
        ShardFaultSchedule { outages }
    }

    /// All outage windows, in host order.
    pub fn outages(&self) -> &[HostOutage] {
        &self.outages
    }

    /// The outage windows of hosts in `[range.start, range.end)` — the
    /// deal handed to the shard owning that host group.
    pub fn for_hosts(&self, range: std::ops::Range<usize>) -> Vec<HostOutage> {
        self.outages
            .iter()
            .filter(|o| range.contains(&o.host))
            .copied()
            .collect()
    }

    /// Number of scheduled outages.
    pub fn len(&self) -> usize {
        self.outages.len()
    }

    /// `true` when no outages are scheduled.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }
}

/// `u64` has no `saturating_shl`; a helper keeps [`RetryPolicy::backoff`]
/// readable.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_schedule_is_deterministic_and_bounded() {
        let horizon = SimDuration::from_millis(2);
        let s = ShardFaultSchedule::generate(11, 100, horizon, 0.3);
        assert_eq!(s, ShardFaultSchedule::generate(11, 100, horizon, 0.3));
        assert!(!s.is_empty(), "30% of 100 hosts should fault");
        assert!(s.len() < 60, "should stay near the configured fraction");
        let end = SimInstant::from_nanos(horizon.as_nanos());
        for o in s.outages() {
            assert!(o.from < o.until, "window must be non-empty");
            assert!(o.until < end, "every host must be back up before the horizon");
        }
        // Host order, one outage per host.
        for w in s.outages().windows(2) {
            assert!(w[0].host < w[1].host);
        }
    }

    #[test]
    fn outage_schedule_deals_by_host_group() {
        let horizon = SimDuration::from_millis(1);
        let s = ShardFaultSchedule::generate(3, 64, horizon, 0.5);
        let mut dealt = 0;
        for group in [0..16, 16..32, 32..48, 48..64] {
            let part = s.for_hosts(group.clone());
            assert!(part.iter().all(|o| group.contains(&o.host)));
            dealt += part.len();
        }
        assert_eq!(dealt, s.len(), "the deal partitions the schedule");
    }

    #[test]
    fn outage_schedule_independent_of_host_count_prefix() {
        // Per-host forked streams: host h's outage is the same whether
        // the rack has 32 or 64 hosts — growth doesn't reshuffle faults.
        let horizon = SimDuration::from_millis(1);
        let small = ShardFaultSchedule::generate(9, 32, horizon, 0.4);
        let large = ShardFaultSchedule::generate(9, 64, horizon, 0.4);
        assert_eq!(small.outages(), large.for_hosts(0..32).as_slice());
    }

    #[test]
    fn backoff_sequence_doubles_then_caps() {
        let policy = RetryPolicy::default();
        let micros: Vec<u64> = (0..7)
            .map(|i| policy.backoff(i).as_nanos() / 1_000)
            .collect();
        assert_eq!(micros, vec![10, 20, 40, 80, 160, 160, 160]);
    }

    #[test]
    fn jittered_backoff_stays_within_the_envelope() {
        let layer = FabricFaults::new(
            DetRng::new(7),
            FaultProfile::chaos_default(),
            RetryPolicy::default(),
        );
        for attempt in 0..6 {
            let full = layer.retry().backoff(attempt);
            for _ in 0..32 {
                let j = layer.jittered_backoff(attempt);
                assert!(j.as_nanos() >= full.as_nanos() / 2, "below half: {j:?}");
                assert!(j <= full, "beyond cap: {j:?} > {full:?}");
            }
        }
    }

    #[test]
    fn scheduled_faults_fire_in_time_order() {
        let layer = FabricFaults::new(
            DetRng::new(1),
            FaultProfile::none(),
            RetryPolicy::default(),
        );
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        layer.schedule(
            SimInstant::from_nanos(200),
            FabricFault::Heal { a, b },
        );
        layer.schedule(
            SimInstant::from_nanos(100),
            FabricFault::Partition { a, b },
        );
        assert!(layer.take_due(SimInstant::from_nanos(50)).is_empty());
        let first = layer.take_due(SimInstant::from_nanos(150));
        assert_eq!(first, vec![FabricFault::Partition { a, b }]);
        assert!(layer.partitioned(b, a), "partition applied, order-blind");
        let second = layer.take_due(SimInstant::from_nanos(300));
        assert_eq!(second, vec![FabricFault::Heal { a, b }]);
        assert!(!layer.partitioned(a, b));
        assert_eq!(layer.pending_len(), 0);
    }

    #[test]
    fn outcomes_are_seed_deterministic() {
        let draw = |seed| {
            let layer = FabricFaults::new(
                DetRng::new(seed),
                FaultProfile::chaos_default(),
                RetryPolicy::default(),
            );
            (0..256).map(|_| layer.verb_outcome()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn none_profile_always_delivers() {
        let layer = FabricFaults::new(
            DetRng::new(3),
            FaultProfile::none(),
            RetryPolicy::default(),
        );
        for _ in 0..100 {
            assert_eq!(layer.verb_outcome(), VerbOutcome::Deliver);
        }
    }
}
