//! Connection management (paper §IV-G).
//!
//! For each pair of communicating nodes the paper establishes two
//! channels: the *RDMA channel* for data transfer and the *disaggregated
//! memory system channel* for talking to the remote node agent (placement,
//! eviction, status). The [`ConnectionManager`] owns both, creates them
//! lazily, and transparently re-establishes them after link or node
//! recovery.

use crate::fabric::{Fabric, QpHandle};
use dmem_types::{DmemResult, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Which of the two per-peer channels an operation wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// The data-plane channel (one-sided READ/WRITE).
    Data,
    /// The control-plane channel (SEND/RECV to the remote agent).
    Control,
}

#[derive(Clone, Copy)]
struct PeerChannels {
    data: QpHandle,
    control: QpHandle,
}

/// Lazily established, self-healing channel pairs from one local node to
/// its peers.
///
/// # Examples
///
/// ```
/// use dmem_net::{ChannelKind, ConnectionManager, Fabric};
/// use dmem_sim::{CostModel, FailureInjector, SimClock};
/// use dmem_types::NodeId;
///
/// let clock = SimClock::new();
/// let fabric = Fabric::new(clock.clone(), CostModel::paper_default(),
///                          FailureInjector::new(clock.clone()));
/// let cm = ConnectionManager::new(NodeId::new(0), fabric.clone());
/// let data = cm.channel(NodeId::new(1), ChannelKind::Data)?;
/// let ctrl = cm.channel(NodeId::new(1), ChannelKind::Control)?;
/// assert_ne!(data.qp, ctrl.qp, "data and control use separate queue pairs");
/// # Ok::<(), dmem_types::DmemError>(())
/// ```
#[derive(Clone)]
pub struct ConnectionManager {
    local: NodeId,
    fabric: Fabric,
    peers: Arc<Mutex<HashMap<NodeId, PeerChannels>>>,
}

impl ConnectionManager {
    /// Creates a manager for channels originating at `local`.
    pub fn new(local: NodeId, fabric: Fabric) -> Self {
        ConnectionManager {
            local,
            fabric,
            peers: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The local node this manager belongs to.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// Returns the channel of `kind` to `peer`, establishing both channels
    /// on first use and re-establishing them if the cached queue pairs are
    /// no longer usable (e.g. after the peer recovered from a crash).
    ///
    /// # Errors
    ///
    /// Returns the underlying fabric error when the peer is unreachable.
    pub fn channel(&self, peer: NodeId, kind: ChannelKind) -> DmemResult<QpHandle> {
        {
            let peers = self.peers.lock();
            if let Some(ch) = peers.get(&peer) {
                let qp = match kind {
                    ChannelKind::Data => ch.data,
                    ChannelKind::Control => ch.control,
                };
                // Cheap liveness probe: a zero-byte send exercises the
                // same path checks as real traffic.
                if self.fabric.send(&qp, Vec::new()).is_ok() {
                    let _ = self.fabric.recv(&self.fabric.peer_handle(&qp));
                    return Ok(qp);
                }
            }
        }
        self.reconnect(peer)?;
        let peers = self.peers.lock();
        let ch = peers.get(&peer).expect("just reconnected");
        Ok(match kind {
            ChannelKind::Data => ch.data,
            ChannelKind::Control => ch.control,
        })
    }

    /// Drops and re-establishes both channels to `peer`.
    ///
    /// # Errors
    ///
    /// Returns the underlying fabric error when the peer is unreachable;
    /// the stale channels stay dropped in that case.
    pub fn reconnect(&self, peer: NodeId) -> DmemResult<()> {
        let mut peers = self.peers.lock();
        if let Some(old) = peers.remove(&peer) {
            let _ = self.fabric.disconnect(&old.data);
            let _ = self.fabric.disconnect(&old.control);
        }
        let data = self.fabric.connect(self.local, peer)?;
        let control = self.fabric.connect(self.local, peer)?;
        peers.insert(peer, PeerChannels { data, control });
        Ok(())
    }

    /// Number of peers with established channels.
    pub fn connected_peers(&self) -> usize {
        self.peers.lock().len()
    }
}

impl fmt::Debug for ConnectionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConnectionManager")
            .field("local", &self.local)
            .field("peers", &self.connected_peers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::{CostModel, FailureEvent, FailureInjector, SimClock};
    use dmem_types::DmemError;

    fn setup() -> (FailureInjector, Fabric, ConnectionManager) {
        let clock = SimClock::new();
        let failures = FailureInjector::new(clock.clone());
        let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures.clone());
        let cm = ConnectionManager::new(NodeId::new(0), fabric.clone());
        (failures, fabric, cm)
    }

    #[test]
    fn channels_are_cached() {
        let (_, _, cm) = setup();
        let d1 = cm.channel(NodeId::new(1), ChannelKind::Data).unwrap();
        let d2 = cm.channel(NodeId::new(1), ChannelKind::Data).unwrap();
        assert_eq!(d1.qp, d2.qp);
        assert_eq!(cm.connected_peers(), 1);
    }

    #[test]
    fn data_and_control_distinct() {
        let (_, _, cm) = setup();
        let d = cm.channel(NodeId::new(2), ChannelKind::Data).unwrap();
        let c = cm.channel(NodeId::new(2), ChannelKind::Control).unwrap();
        assert_ne!(d.qp, c.qp);
        assert_eq!(cm.connected_peers(), 1, "one peer, two channels");
    }

    #[test]
    fn unreachable_peer_propagates_error() {
        let (failures, _, cm) = setup();
        failures.inject_now(FailureEvent::NodeDown(NodeId::new(3)));
        assert_eq!(
            cm.channel(NodeId::new(3), ChannelKind::Data).unwrap_err(),
            DmemError::NodeUnavailable(NodeId::new(3))
        );
    }

    #[test]
    fn reconnects_after_recovery() {
        let (failures, _, cm) = setup();
        let peer = NodeId::new(1);
        let before = cm.channel(peer, ChannelKind::Data).unwrap();
        failures.inject_now(FailureEvent::NodeDown(peer));
        assert!(cm.channel(peer, ChannelKind::Data).is_err());
        failures.inject_now(FailureEvent::NodeUp(peer));
        let after = cm.channel(peer, ChannelKind::Data).unwrap();
        assert_ne!(before.qp, after.qp, "fresh queue pair after recovery");
    }

    #[test]
    fn multiple_peers_tracked() {
        let (_, _, cm) = setup();
        for i in 1..=4 {
            cm.channel(NodeId::new(i), ChannelKind::Data).unwrap();
        }
        assert_eq!(cm.connected_peers(), 4);
    }
}
