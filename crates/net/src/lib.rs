//! A simulated RDMA fabric (paper §IV-G).
//!
//! The paper's cluster-level disaggregation runs on 56 Gbps InfiniBand
//! using reliable-connection (RC) queue pairs: **one-sided** RDMA
//! READ/WRITE verbs for the data plane and **two-sided** SEND/RECV for the
//! control plane. No such hardware exists here, so this crate implements
//! the verbs interface over in-process memory with every operation charged
//! to the shared virtual clock at the calibrated cost
//! (`CostModel::rdma`). The simulator preserves the properties the upper
//! layers rely on:
//!
//! * **registration** — one-sided access requires a registered memory
//!   region and the matching remote key (`rkey`); deregistered regions
//!   fault;
//! * **RC semantics** — messages on a queue pair are delivered at most
//!   once and in order; link or node failure surfaces as an error, never
//!   as silent corruption;
//! * **zero-copy cost shape** — one large transfer pays one base latency;
//!   `n` small transfers pay `n` (this is what makes window-based batching
//!   worthwhile, §IV-H);
//! * **failure injection** — scheduled node and link failures from
//!   [`dmem_sim::FailureInjector`] are honoured by every verb.
//!
//! # Examples
//!
//! ```
//! use dmem_net::Fabric;
//! use dmem_sim::{CostModel, FailureInjector, SimClock};
//! use dmem_types::{ByteSize, NodeId};
//!
//! let clock = SimClock::new();
//! let fabric = Fabric::new(clock.clone(), CostModel::paper_default(),
//!                          FailureInjector::new(clock.clone()));
//! let (a, b) = (NodeId::new(0), NodeId::new(1));
//! let mr = fabric.register(b, ByteSize::from_kib(64))?;
//! let qp = fabric.connect(a, b)?;
//!
//! fabric.write(&qp, &[1, 2, 3], &mr, 0)?;
//! assert_eq!(fabric.read(&qp, &mr, 0, 3)?, vec![1, 2, 3]);
//! assert!(clock.now().nanos() > 0, "verbs charge virtual time");
//! # Ok::<(), dmem_types::DmemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cm;
pub mod cxl;
pub mod fabric;
pub mod faults;

pub use batch::BatchSender;
pub use cm::{ChannelKind, ConnectionManager};
pub use cxl::{CxlAddr, CxlCostModel, CxlPool, CxlRing};
pub use fabric::{Completion, CompletionKind, Fabric, QpHandle, RegionHandle, ShardRouter};
pub use faults::{
    FabricFault, FabricFaults, FaultProfile, HostOutage, RetryPolicy, ShardFaultSchedule,
    VerbOutcome,
};
