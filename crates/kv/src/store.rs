//! The cache implementation.

use dmem_core::{chunked, DisaggregatedMemory, TierPreference};
use dmem_sim::SimDuration;
use dmem_types::{checksum, ByteSize, DmemResult, ServerId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Statistics of a [`KvCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvCacheStats {
    /// Gets served from the in-heap hot set.
    pub hot_hits: u64,
    /// Gets served from disaggregated memory (promoted back to hot).
    pub dm_hits: u64,
    /// Gets that found nothing (or an expired entry).
    pub misses: u64,
    /// Set operations.
    pub sets: u64,
    /// Hot entries demoted to disaggregated memory.
    pub demotions: u64,
    /// Entries dropped because they expired.
    pub expirations: u64,
}

impl KvCacheStats {
    /// Overall hit rate in `[0, 1]`; 0 when no gets were served.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hot_hits + self.dm_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hot_hits + self.dm_hits) as f64 / total as f64
        }
    }
}

struct HotEntry {
    value: Vec<u8>,
    expires_at_ns: u64, // 0 = never
    tick: u64,
}

/// A Memcached-style cache with a bounded in-heap hot set and a
/// disaggregated-memory overflow tier.
///
/// Values up to 16 MiB are supported (they are chunked into pages when
/// demoted). Keys are arbitrary strings; the overflow tier indexes them
/// by a 52-bit hash, and stored frames carry the full key so a hash
/// collision degrades to a cache miss, never to wrong data.
pub struct KvCache {
    dm: Arc<DisaggregatedMemory>,
    server: ServerId,
    capacity: ByteSize,
    used: ByteSize,
    hot: HashMap<String, HotEntry>,
    lru: BTreeMap<u64, String>,
    tick: u64,
    demoted: HashMap<String, ()>,
    stats: KvCacheStats,
}

impl KvCache {
    /// Creates a cache whose hot set holds at most `hot_capacity` of
    /// values.
    pub fn new(dm: Arc<DisaggregatedMemory>, server: ServerId, hot_capacity: ByteSize) -> Self {
        KvCache {
            dm,
            server,
            capacity: hot_capacity,
            used: ByteSize::ZERO,
            hot: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            demoted: HashMap::new(),
            stats: KvCacheStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> KvCacheStats {
        self.stats
    }

    /// Entries currently in the hot set.
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    /// Entries currently demoted to disaggregated memory.
    pub fn demoted_len(&self) -> usize {
        self.demoted.len()
    }

    fn base_of(key: &str) -> u64 {
        checksum(key.as_bytes()) >> chunked::CHUNK_BITS
    }

    fn frame(key: &str, value: &[u8], expires_at_ns: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + key.len() + value.len());
        out.extend_from_slice(&expires_at_ns.to_le_bytes());
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key.as_bytes());
        out.extend_from_slice(value);
        out
    }

    fn unframe<'a>(frame: &'a [u8], key: &str) -> Option<(u64, &'a [u8])> {
        if frame.len() < 12 {
            return None;
        }
        let expires = u64::from_le_bytes(frame[..8].try_into().ok()?);
        let key_len = u32::from_le_bytes(frame[8..12].try_into().ok()?) as usize;
        if frame.len() < 12 + key_len {
            return None;
        }
        if &frame[12..12 + key_len] != key.as_bytes() {
            return None; // hash collision: treat as miss
        }
        Some((expires, &frame[12 + key_len..]))
    }

    fn now_ns(&self) -> u64 {
        self.dm.clock().now().nanos()
    }

    fn touch(&mut self, key: &str) {
        self.tick += 1;
        if let Some(entry) = self.hot.get_mut(key) {
            self.lru.remove(&entry.tick);
            entry.tick = self.tick;
            self.lru.insert(self.tick, key.to_owned());
        }
    }

    fn demote_until(&mut self, needed: ByteSize) -> DmemResult<()> {
        // Collect every LRU victim first, then spill them in one
        // coalesced batch: per-host fabric verbs are shared across the
        // whole eviction burst instead of paid per value.
        let mut frames: Vec<(u64, Vec<u8>)> = Vec::new();
        while self.used + needed > self.capacity && !self.hot.is_empty() {
            let (&tick, victim) = self.lru.iter().next().expect("hot set nonempty");
            let victim = victim.clone();
            self.lru.remove(&tick);
            let entry = self.hot.remove(&victim).expect("victim hot");
            self.used -= ByteSize::from(entry.value.len());
            let frame = Self::frame(&victim, &entry.value, entry.expires_at_ns);
            frames.push((Self::base_of(&victim), frame));
            self.demoted.insert(victim, ());
            self.stats.demotions += 1;
        }
        if !frames.is_empty() {
            let items: Vec<(u64, &[u8])> =
                frames.iter().map(|(b, f)| (*b, f.as_slice())).collect();
            chunked::store_chunked_many(&self.dm, self.server, &items, TierPreference::Auto)?;
        }
        Ok(())
    }

    fn insert_hot(&mut self, key: &str, value: Vec<u8>, expires_at_ns: u64) -> DmemResult<()> {
        if let Some(old) = self.hot.remove(key) {
            self.lru.remove(&old.tick);
            self.used -= ByteSize::from(old.value.len());
        }
        let size = ByteSize::from(value.len());
        if size > self.capacity {
            // Larger than the whole hot set: straight to the overflow tier.
            let frame = Self::frame(key, &value, expires_at_ns);
            chunked::store_chunked(
                &self.dm,
                self.server,
                Self::base_of(key),
                &frame,
                TierPreference::Auto,
            )?;
            self.demoted.insert(key.to_owned(), ());
            self.stats.demotions += 1;
            return Ok(());
        }
        self.demote_until(size)?;
        self.tick += 1;
        self.used += size;
        self.lru.insert(self.tick, key.to_owned());
        self.hot.insert(
            key.to_owned(),
            HotEntry {
                value,
                expires_at_ns,
                tick: self.tick,
            },
        );
        Ok(())
    }

    /// Stores `value` under `key` with no expiry.
    ///
    /// # Errors
    ///
    /// Propagates disaggregated-memory failures from demotions.
    pub fn set(&mut self, key: &str, value: Vec<u8>) -> DmemResult<()> {
        self.set_inner(key, value, 0)
    }

    /// Stores `value` under `key`, expiring after `ttl` of virtual time.
    ///
    /// # Errors
    ///
    /// See [`KvCache::set`].
    pub fn set_with_ttl(&mut self, key: &str, value: Vec<u8>, ttl: SimDuration) -> DmemResult<()> {
        let expires = self.now_ns() + ttl.as_nanos();
        self.set_inner(key, value, expires)
    }

    fn set_inner(&mut self, key: &str, value: Vec<u8>, expires_at_ns: u64) -> DmemResult<()> {
        self.stats.sets += 1;
        // A fresh set supersedes any demoted copy.
        if self.demoted.remove(key).is_some() {
            chunked::delete_chunked(&self.dm, self.server, Self::base_of(key));
        }
        self.insert_hot(key, value, expires_at_ns)
    }

    /// Fetches `key`: hot set first, then disaggregated memory (promoting
    /// the entry back to hot). Expired entries read as misses.
    ///
    /// # Errors
    ///
    /// Propagates disaggregated-memory failures other than not-found.
    pub fn get(&mut self, key: &str) -> DmemResult<Option<Vec<u8>>> {
        let now = self.now_ns();
        if let Some(entry) = self.hot.get(key) {
            if entry.expires_at_ns != 0 && entry.expires_at_ns <= now {
                self.remove_hot(key);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                return Ok(None);
            }
            let value = entry.value.clone();
            self.touch(key);
            self.stats.hot_hits += 1;
            return Ok(Some(value));
        }
        if self.demoted.contains_key(key) {
            let base = Self::base_of(key);
            match chunked::load_chunked(&self.dm, self.server, base) {
                Ok(frame) => {
                    if let Some((expires, value)) = Self::unframe(&frame, key) {
                        if expires != 0 && expires <= now {
                            self.demoted.remove(key);
                            chunked::delete_chunked(&self.dm, self.server, base);
                            self.stats.expirations += 1;
                            self.stats.misses += 1;
                            return Ok(None);
                        }
                        let value = value.to_vec();
                        self.demoted.remove(key);
                        chunked::delete_chunked(&self.dm, self.server, base);
                        self.insert_hot(key, value.clone(), expires)?;
                        self.stats.dm_hits += 1;
                        return Ok(Some(value));
                    }
                    // Collision overwrote our frame: it is gone.
                    self.demoted.remove(key);
                    self.stats.misses += 1;
                    Ok(None)
                }
                Err(_) => {
                    self.demoted.remove(key);
                    self.stats.misses += 1;
                    Ok(None)
                }
            }
        } else {
            self.stats.misses += 1;
            Ok(None)
        }
    }

    fn remove_hot(&mut self, key: &str) {
        if let Some(entry) = self.hot.remove(key) {
            self.lru.remove(&entry.tick);
            self.used -= ByteSize::from(entry.value.len());
        }
    }

    /// Removes `key` from every tier. Returns `true` if it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        let was_hot = self.hot.contains_key(key);
        self.remove_hot(key);
        let was_demoted = self.demoted.remove(key).is_some();
        if was_demoted {
            chunked::delete_chunked(&self.dm, self.server, Self::base_of(key));
        }
        was_hot || was_demoted
    }

    /// `true` if `key` exists in any tier (ignoring expiry).
    pub fn contains(&self, key: &str) -> bool {
        self.hot.contains_key(key) || self.demoted.contains_key(key)
    }
}

impl fmt::Debug for KvCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvCache")
            .field("hot", &self.hot.len())
            .field("demoted", &self.demoted.len())
            .field("used", &self.used)
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_types::ClusterConfig;

    fn cache(hot_kib: u64) -> KvCache {
        let dm = Arc::new(DisaggregatedMemory::new(ClusterConfig::small()).unwrap());
        let server = dm.servers()[0];
        KvCache::new(dm, server, ByteSize::from_kib(hot_kib))
    }

    #[test]
    fn set_get_delete() {
        let mut c = cache(64);
        c.set("a", b"1".to_vec()).unwrap();
        assert_eq!(c.get("a").unwrap(), Some(b"1".to_vec()));
        assert!(c.delete("a"));
        assert!(!c.delete("a"));
        assert_eq!(c.get("a").unwrap(), None);
        let stats = c.stats();
        assert_eq!(stats.hot_hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn overflow_demotes_lru_and_promotes_on_access() {
        let mut c = cache(8); // 8 KiB hot set
        for i in 0..8 {
            c.set(&format!("k{i}"), vec![i as u8; 2048]).unwrap();
        }
        assert!(c.stats().demotions >= 4, "half the entries must demote");
        assert!(c.demoted_len() >= 4);
        // The demoted entries are still readable (dm hit + promotion).
        let value = c.get("k0").unwrap();
        assert_eq!(value, Some(vec![0u8; 2048]));
        assert!(c.stats().dm_hits >= 1);
        assert!(c.hot.contains_key("k0"), "promoted back to hot");
    }

    #[test]
    fn giant_value_goes_straight_to_dm() {
        let mut c = cache(4);
        let big = vec![7u8; 100_000];
        c.set("big", big.clone()).unwrap();
        assert_eq!(c.hot_len(), 0);
        assert_eq!(c.demoted_len(), 1);
        assert_eq!(c.get("big").unwrap(), Some(big));
    }

    #[test]
    fn ttl_expiry_in_hot_set() {
        let mut c = cache(64);
        let clock = c.dm.clock().clone();
        c.set_with_ttl("t", b"temp".to_vec(), SimDuration::from_millis(5))
            .unwrap();
        assert_eq!(c.get("t").unwrap(), Some(b"temp".to_vec()));
        clock.advance(SimDuration::from_millis(6));
        assert_eq!(c.get("t").unwrap(), None);
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn ttl_expiry_survives_demotion() {
        let mut c = cache(4);
        let clock = c.dm.clock().clone();
        c.set_with_ttl("t", vec![1u8; 2048], SimDuration::from_millis(5))
            .unwrap();
        // Push it out of the hot set.
        c.set("filler1", vec![2u8; 2048]).unwrap();
        c.set("filler2", vec![3u8; 2048]).unwrap();
        assert!(c.demoted.contains_key("t"));
        clock.advance(SimDuration::from_millis(6));
        assert_eq!(c.get("t").unwrap(), None, "expired in the overflow tier");
        assert!(!c.contains("t"));
    }

    #[test]
    fn overwrite_supersedes_demoted_copy() {
        let mut c = cache(4);
        c.set("k", vec![1u8; 2048]).unwrap();
        c.set("f1", vec![2u8; 2048]).unwrap();
        c.set("f2", vec![2u8; 2048]).unwrap(); // k demoted
        assert!(c.demoted.contains_key("k"));
        c.set("k", b"new".to_vec()).unwrap();
        assert_eq!(c.get("k").unwrap(), Some(b"new".to_vec()));
        assert!(!c.demoted.contains_key("k"));
    }

    #[test]
    fn hit_rate_accounting() {
        let mut c = cache(64);
        c.set("a", b"1".to_vec()).unwrap();
        let _ = c.get("a").unwrap();
        let _ = c.get("nope").unwrap();
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
        let empty = KvCacheStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn collision_degrades_to_miss_not_wrong_data() {
        let mut c = cache(4);
        c.set("victim", vec![9u8; 2048]).unwrap();
        c.set("f1", vec![0u8; 2048]).unwrap();
        c.set("f2", vec![0u8; 2048]).unwrap(); // victim demoted
        assert!(c.demoted.contains_key("victim"));
        // Forge a colliding frame: overwrite victim's chunk base with a
        // frame carrying a different key.
        let base = KvCache::base_of("victim");
        let forged = KvCache::frame("attacker", b"evil", 0);
        chunked::store_chunked(&c.dm, c.server, base, &forged, TierPreference::Auto).unwrap();
        assert_eq!(c.get("victim").unwrap(), None, "collision must read as miss");
    }

    #[test]
    fn model_based_random_ops() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::new(
            proptest::test_runner::Config::with_cases(16),
        );
        let ops = proptest::collection::vec(
            (0u8..3, 0u64..24, 1usize..4000),
            1..80,
        );
        runner
            .run(&ops, |ops| {
                let mut cache = cache(8); // tiny hot set: constant churn
                let mut model: std::collections::HashMap<String, Vec<u8>> =
                    std::collections::HashMap::new();
                for (kind, key, len) in ops {
                    let key = format!("k{key}");
                    match kind {
                        0 => {
                            let value = vec![(key.len() + len) as u8; len];
                            cache.set(&key, value.clone()).unwrap();
                            model.insert(key, value);
                        }
                        1 => {
                            let got = cache.get(&key).unwrap();
                            prop_assert_eq!(got.as_ref(), model.get(&key));
                        }
                        _ => {
                            let deleted = cache.delete(&key);
                            prop_assert_eq!(deleted, model.remove(&key).is_some());
                        }
                    }
                }
                // Closing audit across both tiers.
                for (key, value) in &model {
                    let got = cache.get(key).unwrap();
                    prop_assert_eq!(got.as_ref(), Some(value));
                }
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn many_keys_roundtrip_through_tiers() {
        let mut c = cache(16);
        // 64 × 1 KiB values overflow the 16 KiB hot set four times over.
        for i in 0..64u32 {
            c.set(&format!("key-{i}"), vec![i as u8; 1024]).unwrap();
        }
        for i in 0..64u32 {
            assert_eq!(
                c.get(&format!("key-{i}")).unwrap(),
                Some(vec![i as u8; 1024]),
                "key-{i}"
            );
        }
        let stats = c.stats();
        assert!(stats.dm_hits > 0, "cold keys came from disaggregated memory");
        assert_eq!(stats.misses, 0);
    }
}
