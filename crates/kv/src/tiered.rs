//! A serving-grade tiered KV-cache engine for LLM conversations.
//!
//! MemDis-LLM's observation, applied to this stack: an LLM serving host
//! keeps per-conversation KV-cache state that outlives individual
//! requests, grows every turn, and is accessed with strong recency skew.
//! Local memory holds only the hot conversations; everything else must
//! go *somewhere*, and where it goes decides the tail:
//!
//! * **drop it** (local-only serving) — the next turn re-prefills the
//!   whole conversation history, milliseconds of compute;
//! * **disk offload** — restore pays a ~4 ms disk read;
//! * **disaggregated memory** — restore is a microsecond-scale batched
//!   fabric fetch, the paper's §III killer-app argument again.
//!
//! [`TieredKvEngine`] implements the third design with the other two as
//! selectable baselines ([`SpillPolicy`]). State moves at **conversation
//! granularity**: a demotion spills a whole conversation's KV bytes in
//! one coalesced batch ([`chunked::store_chunked_many`]), a restore
//! fetches them back in one ([`chunked::load_chunked_many`]), so the
//! fabric sees a few large windows instead of one verb per key. Reusable
//! **prefixes** (shared system prompts) are cached in remote memory: a
//! hit turns the whole-prefix prefill into a fetch.
//!
//! Multi-tenant wiring: conversations store under one of two virtual
//! servers — `rookie` until they have completed
//! [`TieredKvConfig::long_running_turns`] turns, `veteran` after — so a
//! PR 4 QoS engine can give long-running conversations a protected
//! quota/priority while a flash crowd of new sessions is admission-
//! limited, degraded to disk instead of evicting the veterans.

use dmem_core::{chunked, DisaggregatedMemory, TierPreference};
use dmem_sim::{splitmix64, SimDuration};
use dmem_types::{ByteSize, DmemResult, EntryLocation, ServerId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Where cold conversations go when local memory is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillPolicy {
    /// Local → remote memory → disk (the tiered design under test).
    RemoteThenDisk,
    /// Local → disk (the conventional offload baseline).
    DiskOnly,
    /// Evicted conversations are dropped; the next turn re-prefills the
    /// whole history (the local-only baseline).
    DropCold,
}

/// Scaled compute/storage cost model for the serving simulation.
#[derive(Debug, Clone, Copy)]
pub struct LlmCostModel {
    /// KV-cache bytes per token of context.
    pub kv_bytes_per_token: usize,
    /// Prefill compute per token (recomputing dropped context, new
    /// prompt tokens, uncached prefixes).
    pub prefill_per_token: SimDuration,
    /// Decode compute per generated token.
    pub decode_per_token: SimDuration,
}

impl Default for LlmCostModel {
    fn default() -> Self {
        LlmCostModel {
            kv_bytes_per_token: 256,
            prefill_per_token: SimDuration::from_micros(1),
            decode_per_token: SimDuration::from_micros(5),
        }
    }
}

impl LlmCostModel {
    /// KV bytes for `tokens` of context.
    pub fn bytes(&self, tokens: u32) -> usize {
        tokens as usize * self.kv_bytes_per_token
    }

    /// Prefill time for `tokens`.
    pub fn prefill(&self, tokens: u32) -> SimDuration {
        self.prefill_per_token * tokens as u64
    }

    /// Decode time for `tokens`.
    pub fn decode(&self, tokens: u32) -> SimDuration {
        self.decode_per_token * tokens as u64
    }
}

/// Configuration of a [`TieredKvEngine`].
#[derive(Debug, Clone)]
pub struct TieredKvConfig {
    /// In-heap budget for hot conversation KV state.
    pub local_capacity: ByteSize,
    /// Budget for the warm (remote-memory) tier; overflow moves on to
    /// disk. Ignored under [`SpillPolicy::DiskOnly`]/[`SpillPolicy::DropCold`].
    pub remote_capacity: ByteSize,
    /// Budget for cached prefixes in remote memory.
    pub prefix_cache_capacity: ByteSize,
    /// Spill policy for cold conversations.
    pub spill: SpillPolicy,
    /// Completed turns after which a conversation stores under the
    /// veteran server (and thus its QoS tenant).
    pub long_running_turns: u32,
    /// Compute/KV scaling model.
    pub cost: LlmCostModel,
}

impl Default for TieredKvConfig {
    fn default() -> Self {
        TieredKvConfig {
            local_capacity: ByteSize::from_mib(2),
            remote_capacity: ByteSize::from_mib(16),
            prefix_cache_capacity: ByteSize::from_mib(1),
            spill: SpillPolicy::RemoteThenDisk,
            long_running_turns: 3,
            cost: LlmCostModel::default(),
        }
    }
}

/// How a turn's context was made resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnServed {
    /// Context was already in local memory.
    Local,
    /// Context fetched back from remote memory.
    Remote,
    /// Context fetched back from disk.
    Disk,
    /// Context was gone (dropped); the whole history was re-prefilled.
    Recomputed,
    /// New conversation whose system prefix was served from the prefix
    /// cache — no prefix prefill.
    PrefixHit,
    /// New conversation whose system prefix had to be prefilled (and was
    /// then cached for the next conversation).
    PrefixMiss,
}

/// Counters of a [`TieredKvEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TieredKvStats {
    /// Turns served.
    pub turns: u64,
    /// Conversations opened.
    pub conversations: u64,
    /// Context restores served from local memory.
    pub local_hits: u64,
    /// Context restores fetched from remote memory.
    pub remote_fetches: u64,
    /// Context restores fetched from disk.
    pub disk_fetches: u64,
    /// Context restores that had to re-prefill dropped history.
    pub recomputes: u64,
    /// Tokens re-prefilled by those restores.
    pub recomputed_tokens: u64,
    /// New conversations served from the prefix cache.
    pub prefix_hits: u64,
    /// New conversations that prefilled (and cached) their prefix.
    pub prefix_misses: u64,
    /// Prefix-cache entries evicted to stay in budget.
    pub prefix_evictions: u64,
    /// Conversations demoted local → remote.
    pub demote_to_remote: u64,
    /// Conversations demoted onward to disk (either tier).
    pub demote_to_disk: u64,
    /// Conversations dropped under [`SpillPolicy::DropCold`].
    pub drops: u64,
}

impl TieredKvStats {
    /// Prefix-cache hit rate over conversation opens, in `[0, 1]`.
    pub fn prefix_hit_rate(&self) -> f64 {
        let total = self.prefix_hits + self.prefix_misses;
        if total == 0 {
            0.0
        } else {
            self.prefix_hits as f64 / total as f64
        }
    }
}

/// Point-in-time occupancy of every tier, for reporting (`dmem_top`) and
/// the byte-accounting invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierOccupancy {
    /// Conversations resident in local memory.
    pub local_convs: usize,
    /// Bytes of local KV state.
    pub local_bytes: u64,
    /// Conversations in remote memory.
    pub remote_convs: usize,
    /// Bytes in remote memory.
    pub remote_bytes: u64,
    /// Conversations on disk.
    pub disk_convs: usize,
    /// Bytes on disk.
    pub disk_bytes: u64,
    /// Cached prefixes.
    pub prefix_entries: usize,
    /// Bytes of cached prefixes.
    pub prefix_bytes: u64,
}

struct LocalConv {
    bytes: Vec<u8>,
    tick: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColdTier {
    Remote,
    Disk,
}

struct ColdConv {
    server: ServerId,
    tier: ColdTier,
    len: usize,
    tick: u64,
}

struct PrefixEntry {
    len: usize,
    tick: u64,
}

/// Key-space domains: conversation bases are session ids, prefix bases
/// live far above any session id.
const PREFIX_BASE: u64 = 1 << 40;

/// Synthetic-content domains (prefix-stable random-access streams, so a
/// recompute regenerates byte-identical state).
const DOMAIN_CONV: u64 = 0x6b76_636f_6e76_3031; // "kvconv01"
const DOMAIN_PREFIX: u64 = 0x6b76_7066_7831_3031; // "kvpfx101"

fn stream_append(domain: u64, start: usize, len: usize, out: &mut Vec<u8>) {
    out.reserve(len);
    for i in start..start + len {
        let word = splitmix64(splitmix64(domain) ^ (i as u64 / 8));
        out.push(word.to_le_bytes()[i % 8]);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// The tiered conversation KV-cache engine. See the module docs.
pub struct TieredKvEngine {
    dm: Arc<DisaggregatedMemory>,
    rookie: ServerId,
    veteran: ServerId,
    config: TieredKvConfig,
    tick: u64,
    local: HashMap<u64, LocalConv>,
    local_used: u64,
    local_lru: BTreeMap<u64, u64>,
    cold: HashMap<u64, ColdConv>,
    remote_used: u64,
    remote_lru: BTreeMap<u64, u64>,
    /// Completed turns per live conversation (tenure → tenant server).
    tenure: HashMap<u64, u32>,
    /// Prefix id of each live conversation, for canonical resynthesis.
    prefix_of: HashMap<u64, u32>,
    prefix: HashMap<u32, PrefixEntry>,
    prefix_used: u64,
    prefix_lru: BTreeMap<u64, u32>,
    stats: TieredKvStats,
    demotions: u64,
    demotion_fnv: u64,
}

impl TieredKvEngine {
    /// Creates an engine storing every conversation under one server.
    pub fn new(dm: Arc<DisaggregatedMemory>, server: ServerId, config: TieredKvConfig) -> Self {
        Self::with_servers(dm, server, server, config)
    }

    /// Mirrors a serving-path event into the cluster metrics registry as
    /// a `kv.*` counter: the [`TieredKvStats`] totals only tell
    /// end-of-run, while these let the timeline sampler and the
    /// spill-thrash alert rules see tier traffic per window.
    fn kv_count(&self, name: &str) {
        self.dm.metrics().counter(name).inc();
    }

    /// Creates an engine with a tenant split: conversations below
    /// [`TieredKvConfig::long_running_turns`] completed turns store under
    /// `rookie`, older ones (and the prefix cache) under `veteran`.
    /// Register the two servers with distinct QoS tenants to isolate
    /// long-running conversations from flash crowds.
    pub fn with_servers(
        dm: Arc<DisaggregatedMemory>,
        rookie: ServerId,
        veteran: ServerId,
        config: TieredKvConfig,
    ) -> Self {
        TieredKvEngine {
            dm,
            rookie,
            veteran,
            config,
            tick: 0,
            local: HashMap::new(),
            local_used: 0,
            local_lru: BTreeMap::new(),
            cold: HashMap::new(),
            remote_used: 0,
            remote_lru: BTreeMap::new(),
            tenure: HashMap::new(),
            prefix_of: HashMap::new(),
            prefix: HashMap::new(),
            prefix_used: 0,
            prefix_lru: BTreeMap::new(),
            stats: TieredKvStats::default(),
            demotions: 0,
            demotion_fnv: FNV_OFFSET,
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> TieredKvStats {
        self.stats
    }

    /// The engine's cost model.
    pub fn cost(&self) -> &LlmCostModel {
        &self.config.cost
    }

    /// Point-in-time per-tier occupancy.
    pub fn occupancy(&self) -> TierOccupancy {
        let mut occ = TierOccupancy {
            local_convs: self.local.len(),
            local_bytes: self.local_used,
            prefix_entries: self.prefix.len(),
            prefix_bytes: self.prefix_used,
            ..TierOccupancy::default()
        };
        for cold in self.cold.values() {
            match cold.tier {
                ColdTier::Remote => {
                    occ.remote_convs += 1;
                    occ.remote_bytes += cold.len as u64;
                }
                ColdTier::Disk => {
                    occ.disk_convs += 1;
                    occ.disk_bytes += cold.len as u64;
                }
            }
        }
        occ
    }

    /// Deterministic digest of the demotion sequence `(session, target)`
    /// — two runs of the same workload must agree byte-for-byte.
    pub fn demotion_digest(&self) -> String {
        format!("n={} fnv={:#018x}", self.demotions, self.demotion_fnv)
    }

    fn note_demotion(&mut self, session: u64, target: u8) {
        self.demotions += 1;
        for byte in session.to_le_bytes().iter().chain(std::iter::once(&target)) {
            self.demotion_fnv ^= u64::from(*byte);
            self.demotion_fnv = self.demotion_fnv.wrapping_mul(FNV_PRIME);
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn server_for(&self, session: u64) -> ServerId {
        if self.tenure.get(&session).copied().unwrap_or(0) >= self.config.long_running_turns {
            self.veteran
        } else {
            self.rookie
        }
    }

    /// Canonical KV bytes of `session` at `len` bytes of context: the
    /// shared prefix stream first, the session's own stream after. A
    /// recompute regenerates exactly these bytes.
    fn synth_context(&self, session: u64, len: usize) -> Vec<u8> {
        let prefix_id = self.prefix_of.get(&session).copied().unwrap_or(0);
        let prefix_len = self
            .prefix
            .get(&prefix_id)
            .map_or(0, |p| p.len)
            .min(len);
        let mut out = Vec::with_capacity(len);
        stream_append(DOMAIN_PREFIX ^ u64::from(prefix_id), 0, prefix_len, &mut out);
        stream_append(DOMAIN_CONV ^ splitmix64(session), prefix_len, len - prefix_len, &mut out);
        out
    }

    fn synth_prefix(&self, prefix_id: u32, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        stream_append(DOMAIN_PREFIX ^ u64::from(prefix_id), 0, len, &mut out);
        out
    }

    fn touch_local(&mut self, session: u64) {
        let tick = self.next_tick();
        if let Some(conv) = self.local.get_mut(&session) {
            self.local_lru.remove(&conv.tick);
            conv.tick = tick;
            self.local_lru.insert(tick, session);
        }
    }

    fn insert_local(&mut self, session: u64, bytes: Vec<u8>) -> DmemResult<()> {
        self.make_room(bytes.len() as u64, Some(session))?;
        let tick = self.next_tick();
        self.local_used += bytes.len() as u64;
        self.local_lru.insert(tick, session);
        self.local.insert(session, LocalConv { bytes, tick });
        Ok(())
    }

    /// Demotes LRU conversations until `incoming` more local bytes fit,
    /// spilling all victims in one coalesced batch. `pin` is never chosen
    /// as a victim (the conversation being served); a pinned conversation
    /// larger than the whole budget is allowed to overshoot transiently —
    /// its own demotion resolves it at the next insert.
    fn make_room(&mut self, incoming: u64, pin: Option<u64>) -> DmemResult<()> {
        let capacity = self.config.local_capacity.as_u64();
        let mut victims: Vec<u64> = Vec::new();
        let mut freed = 0u64;
        for (_, &session) in &self.local_lru {
            if self.local_used - freed + incoming <= capacity {
                break;
            }
            if Some(session) == pin {
                continue;
            }
            freed += self.local[&session].bytes.len() as u64;
            victims.push(session);
        }
        self.spill(victims)
    }

    /// Spills `victims` out of local memory according to the policy, in
    /// deterministic LRU order, with all stores coalesced per server.
    fn spill(&mut self, victims: Vec<u64>) -> DmemResult<()> {
        if victims.is_empty() {
            return Ok(());
        }
        let span = self.dm.clock().tracer().span("kv", "spill");
        span.tag("convs", victims.len());
        let mut taken: Vec<(u64, Vec<u8>)> = Vec::with_capacity(victims.len());
        for session in victims {
            let conv = self.local.remove(&session).expect("victim is local");
            self.local_lru.remove(&conv.tick);
            self.local_used -= conv.bytes.len() as u64;
            taken.push((session, conv.bytes));
        }
        match self.config.spill {
            SpillPolicy::DropCold => {
                for (session, bytes) in taken {
                    self.stats.drops += 1;
                    self.kv_count("kv.drop");
                    self.note_demotion(session, b'x');
                    drop(bytes);
                }
                Ok(())
            }
            SpillPolicy::DiskOnly => {
                for (session, _) in &taken {
                    self.stats.demote_to_disk += 1;
                    self.kv_count("kv.demote.disk");
                    self.note_demotion(*session, b'd');
                }
                self.store_cold(taken, ColdTier::Disk)
            }
            SpillPolicy::RemoteThenDisk => {
                let incoming: u64 = taken.iter().map(|(_, b)| b.len() as u64).sum();
                self.shrink_remote(incoming)?;
                for (session, _) in &taken {
                    self.stats.demote_to_remote += 1;
                    self.kv_count("kv.demote.remote");
                    self.note_demotion(*session, b'r');
                }
                self.store_cold(taken, ColdTier::Remote)
            }
        }
    }

    /// Moves remote-LRU conversations to disk until `incoming` more
    /// bytes fit the remote budget. A real data move: the bytes travel
    /// back over the fabric and down to disk, batched both ways.
    fn shrink_remote(&mut self, incoming: u64) -> DmemResult<()> {
        let capacity = self.config.remote_capacity.as_u64();
        let mut victims: Vec<u64> = Vec::new();
        let mut freed = 0u64;
        for (_, &session) in &self.remote_lru {
            if self.remote_used - freed + incoming <= capacity {
                break;
            }
            freed += self.cold[&session].len as u64;
            victims.push(session);
        }
        if victims.is_empty() {
            return Ok(());
        }
        let span = self.dm.clock().tracer().span("kv", "demote_disk");
        span.tag("convs", victims.len());
        // Fetch every victim's bytes (coalesced per server), then
        // re-store them to disk; `put_batch` replaces the old remote
        // entries in place.
        let mut by_server: BTreeMap<ServerId, Vec<u64>> = BTreeMap::new();
        for &session in &victims {
            by_server
                .entry(self.cold[&session].server)
                .or_default()
                .push(session);
        }
        for (server, sessions) in by_server {
            let loaded = chunked::load_chunked_many(&self.dm, server, &sessions)?;
            let items: Vec<(u64, &[u8])> = sessions
                .iter()
                .zip(&loaded)
                .map(|(&s, b)| (s, b.as_slice()))
                .collect();
            chunked::store_chunked_many(&self.dm, server, &items, TierPreference::Disk)?;
            for &session in &sessions {
                let cold = self.cold.get_mut(&session).expect("victim cold");
                self.remote_lru.remove(&cold.tick);
                self.remote_used -= cold.len as u64;
                cold.tier = ColdTier::Disk;
                self.stats.demote_to_disk += 1;
                self.kv_count("kv.demote.disk");
            }
        }
        for session in victims {
            self.note_demotion(session, b'D');
        }
        Ok(())
    }

    /// Stores evicted conversations cold, coalesced per tenant server,
    /// classifying each by where it actually landed (QoS admission may
    /// degrade a remote store to disk).
    fn store_cold(&mut self, taken: Vec<(u64, Vec<u8>)>, want: ColdTier) -> DmemResult<()> {
        let pref = match want {
            ColdTier::Remote => TierPreference::Remote,
            ColdTier::Disk => TierPreference::Disk,
        };
        let mut by_server: BTreeMap<ServerId, Vec<(u64, Vec<u8>)>> = BTreeMap::new();
        for (session, bytes) in taken {
            by_server
                .entry(self.server_for(session))
                .or_default()
                .push((session, bytes));
        }
        for (server, items) in by_server {
            let refs: Vec<(u64, &[u8])> =
                items.iter().map(|(s, b)| (*s, b.as_slice())).collect();
            chunked::store_chunked_many(&self.dm, server, &refs, pref)?;
            for (session, bytes) in items {
                let landed = match chunked::tier_of(&self.dm, server, session) {
                    Some(EntryLocation::Disk) => ColdTier::Disk,
                    _ => want,
                };
                let tick = self.next_tick();
                if landed == ColdTier::Remote {
                    self.remote_used += bytes.len() as u64;
                    self.remote_lru.insert(tick, session);
                }
                self.cold.insert(
                    session,
                    ColdConv {
                        server,
                        tier: landed,
                        len: bytes.len(),
                        tick,
                    },
                );
            }
        }
        Ok(())
    }

    /// Fetches several conversations' KV state, promoting cold ones back
    /// to local memory with per-server coalesced batch reads — the
    /// serving analogue of core `get_batch`. Returns each conversation's
    /// bytes in `sessions` order, `None` for unknown (never stored or
    /// dropped) conversations.
    ///
    /// # Errors
    ///
    /// Propagates disaggregated-memory failures.
    pub fn get_many(&mut self, sessions: &[u64]) -> DmemResult<Vec<Option<Vec<u8>>>> {
        let span = self.dm.clock().tracer().span("kv", "get_many");
        span.tag("convs", sessions.len());
        // Snapshot local hits before promotions can evict them, then
        // promote every cold requested conversation, batched per server.
        let mut found: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut by_server: BTreeMap<ServerId, Vec<u64>> = BTreeMap::new();
        for &session in sessions {
            if let Some(conv) = self.local.get(&session) {
                found.entry(session).or_insert_with(|| conv.bytes.clone());
                self.touch_local(session);
            } else if let Some(cold) = self.cold.get(&session) {
                by_server.entry(cold.server).or_default().push(session);
            }
        }
        for (server, mut batch) in by_server {
            batch.sort_unstable();
            batch.dedup();
            let loaded = chunked::load_chunked_many(&self.dm, server, &batch)?;
            for (session, bytes) in batch.into_iter().zip(loaded) {
                let cold = self.cold.remove(&session).expect("requested cold");
                if cold.tier == ColdTier::Remote {
                    self.remote_lru.remove(&cold.tick);
                    self.remote_used -= cold.len as u64;
                    self.stats.remote_fetches += 1;
                    self.kv_count("kv.fetch.remote");
                } else {
                    self.stats.disk_fetches += 1;
                    self.kv_count("kv.fetch.disk");
                }
                chunked::delete_chunked(&self.dm, server, session);
                found.insert(session, bytes.clone());
                self.insert_local(session, bytes)?;
            }
        }
        Ok(sessions.iter().map(|s| found.get(s).cloned()).collect())
    }

    /// Inserts (or overwrites) whole conversations' KV state in one
    /// call, demoting in coalesced batches as needed. This is the bulk
    /// counterpart of the per-turn path, and the write half of the
    /// batch-verb API.
    ///
    /// # Errors
    ///
    /// Propagates disaggregated-memory failures from demotions.
    pub fn put_many(&mut self, items: Vec<(u64, Vec<u8>)>) -> DmemResult<()> {
        let span = self.dm.clock().tracer().span("kv", "put_many");
        span.tag("convs", items.len());
        for (session, bytes) in items {
            self.forget(session);
            self.insert_local(session, bytes)?;
        }
        Ok(())
    }

    /// Removes any stored copy of `session` without statistics — the
    /// overwrite half of [`put_many`](Self::put_many) and retirement.
    fn forget(&mut self, session: u64) {
        if let Some(conv) = self.local.remove(&session) {
            self.local_lru.remove(&conv.tick);
            self.local_used -= conv.bytes.len() as u64;
        }
        if let Some(cold) = self.cold.remove(&session) {
            if cold.tier == ColdTier::Remote {
                self.remote_lru.remove(&cold.tick);
                self.remote_used -= cold.len as u64;
            }
            chunked::delete_chunked(&self.dm, cold.server, session);
        }
    }

    /// Serves the context-restore half of a turn: make `session`'s KV
    /// state resident local (fetching or re-prefilling as needed), then
    /// prefill the new prompt. The virtual time this call advances the
    /// clock by **is** the turn's time-to-first-token, queueing aside.
    ///
    /// `turn == 0` opens the conversation and serves its shared system
    /// prefix from the prefix cache when possible.
    ///
    /// # Errors
    ///
    /// Propagates disaggregated-memory failures.
    pub fn begin_turn(
        &mut self,
        session: u64,
        turn: u32,
        prefix_id: u32,
        context_tokens: u32,
        prompt_tokens: u32,
    ) -> DmemResult<TurnServed> {
        let clock = self.dm.clock().clone();
        self.stats.turns += 1;
        let served = if turn == 0 {
            self.stats.conversations += 1;
            self.tenure.insert(session, 0);
            self.prefix_of.insert(session, prefix_id);
            let prefix_len = self.config.cost.bytes(context_tokens);
            if self.prefix.contains_key(&prefix_id) {
                // Cached prefix: the conversation's opening KV state is
                // a microsecond fetch instead of a prefix prefill.
                let bytes =
                    chunked::load_chunked(&self.dm, self.veteran, PREFIX_BASE | u64::from(prefix_id))?;
                self.touch_prefix(prefix_id);
                let mut opening = bytes;
                opening.truncate(prefix_len);
                self.insert_local(session, opening)?;
                self.stats.prefix_hits += 1;
                self.kv_count("kv.prefix.hit");
                TurnServed::PrefixHit
            } else {
                clock.advance(self.config.cost.prefill(context_tokens));
                let bytes = self.synth_prefix(prefix_id, prefix_len);
                self.cache_prefix(prefix_id, &bytes)?;
                self.insert_local(session, bytes)?;
                self.stats.prefix_misses += 1;
                self.kv_count("kv.prefix.miss");
                TurnServed::PrefixMiss
            }
        } else if self.local.contains_key(&session) {
            self.touch_local(session);
            self.stats.local_hits += 1;
            self.kv_count("kv.local.hit");
            TurnServed::Local
        } else if self.cold.contains_key(&session) {
            let was_remote = self.cold[&session].tier == ColdTier::Remote;
            let span = self.dm.clock().tracer().span("kv", "restore");
            span.tag("convs", 1usize);
            drop(span);
            self.get_many(&[session])?;
            if was_remote {
                TurnServed::Remote
            } else {
                TurnServed::Disk
            }
        } else {
            // Dropped (or never seen): the whole history is re-prefilled.
            clock.advance(self.config.cost.prefill(context_tokens));
            self.prefix_of.entry(session).or_insert(prefix_id);
            let bytes = self.synth_context(session, self.config.cost.bytes(context_tokens));
            self.insert_local(session, bytes)?;
            self.stats.recomputes += 1;
            self.stats.recomputed_tokens += u64::from(context_tokens);
            self.kv_count("kv.recompute");
            TurnServed::Recomputed
        };
        // New prompt tokens always prefill.
        clock.advance(self.config.cost.prefill(prompt_tokens));
        Ok(served)
    }

    /// Finishes a turn: appends the KV state of the tokens it added.
    /// Decode time is charged by the caller (first token already counted
    /// in [`begin_turn`](Self::begin_turn)).
    ///
    /// # Errors
    ///
    /// Propagates demotion failures; the conversation must be resident
    /// (i.e. `begin_turn` was called).
    pub fn end_turn(&mut self, session: u64, new_tokens: u32) -> DmemResult<()> {
        let delta = self.config.cost.bytes(new_tokens);
        let offset = self.local[&session].bytes.len();
        let prefix_id = self.prefix_of.get(&session).copied().unwrap_or(0);
        let prefix_len = self.prefix.get(&prefix_id).map_or(0, |p| p.len);
        let mut grown = Vec::new();
        stream_append(
            DOMAIN_CONV ^ splitmix64(session),
            offset.max(prefix_len),
            delta,
            &mut grown,
        );
        self.make_room(delta as u64, Some(session))?;
        let conv = self.local.get_mut(&session).expect("resident after begin_turn");
        conv.bytes.extend_from_slice(&grown);
        self.local_used += delta as u64;
        *self.tenure.entry(session).or_insert(0) += 1;
        self.touch_local(session);
        Ok(())
    }

    /// Retires a conversation, freeing every tier.
    pub fn retire(&mut self, session: u64) {
        self.forget(session);
        self.tenure.remove(&session);
        self.prefix_of.remove(&session);
    }

    fn touch_prefix(&mut self, prefix_id: u32) {
        let tick = self.next_tick();
        if let Some(entry) = self.prefix.get_mut(&prefix_id) {
            self.prefix_lru.remove(&entry.tick);
            entry.tick = tick;
            self.prefix_lru.insert(tick, prefix_id);
        }
    }

    /// Inserts a prefix into the remote-memory prefix cache, evicting
    /// LRU prefixes to stay in budget. Oversized prefixes are skipped
    /// rather than thrashing the whole cache.
    fn cache_prefix(&mut self, prefix_id: u32, bytes: &[u8]) -> DmemResult<()> {
        let capacity = self.config.prefix_cache_capacity.as_u64();
        if bytes.len() as u64 > capacity {
            return Ok(());
        }
        while self.prefix_used + bytes.len() as u64 > capacity {
            let (&tick, &victim) = self.prefix_lru.iter().next().expect("cache nonempty");
            self.prefix_lru.remove(&tick);
            let entry = self.prefix.remove(&victim).expect("victim cached");
            self.prefix_used -= entry.len as u64;
            chunked::delete_chunked(&self.dm, self.veteran, PREFIX_BASE | u64::from(victim));
            self.stats.prefix_evictions += 1;
        }
        chunked::store_chunked(
            &self.dm,
            self.veteran,
            PREFIX_BASE | u64::from(prefix_id),
            bytes,
            TierPreference::Remote,
        )?;
        let tick = self.next_tick();
        self.prefix_used += bytes.len() as u64;
        self.prefix_lru.insert(tick, prefix_id);
        self.prefix.insert(
            prefix_id,
            PrefixEntry {
                len: bytes.len(),
                tick,
            },
        );
        Ok(())
    }
}

impl fmt::Debug for TieredKvEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let occ = self.occupancy();
        f.debug_struct("TieredKvEngine")
            .field("local", &occ.local_convs)
            .field("remote", &occ.remote_convs)
            .field("disk", &occ.disk_convs)
            .field("prefixes", &occ.prefix_entries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_types::ClusterConfig;

    fn engine(config: TieredKvConfig) -> TieredKvEngine {
        let dm = Arc::new(DisaggregatedMemory::new(ClusterConfig::small()).unwrap());
        let server = dm.servers()[0];
        TieredKvEngine::new(dm, server, config)
    }

    fn tight() -> TieredKvConfig {
        TieredKvConfig {
            local_capacity: ByteSize::from_kib(64),
            remote_capacity: ByteSize::from_kib(256),
            prefix_cache_capacity: ByteSize::from_kib(64),
            ..TieredKvConfig::default()
        }
    }

    /// Drives `sessions` conversations of `turns` turns each, round-robin,
    /// with a 32-token prefix and 16 new tokens per turn.
    fn drive(engine: &mut TieredKvEngine, sessions: u64, turns: u32) {
        for turn in 0..turns {
            for session in 0..sessions {
                let ctx = 32 + turn * 16;
                engine
                    .begin_turn(session, turn, (session % 2) as u32, ctx, 8)
                    .unwrap();
                engine.end_turn(session, 16).unwrap();
            }
        }
    }

    #[test]
    fn prefix_cache_hits_skip_prefill() {
        let mut e = engine(tight());
        let clock = e.dm.clock().clone();

        let t0 = clock.now();
        assert_eq!(e.begin_turn(1, 0, 7, 128, 0).unwrap(), TurnServed::PrefixMiss);
        let miss_cost = clock.now() - t0;

        let t1 = clock.now();
        assert_eq!(e.begin_turn(2, 0, 7, 128, 0).unwrap(), TurnServed::PrefixHit);
        let hit_cost = clock.now() - t1;

        assert!(
            hit_cost.as_nanos() < miss_cost.as_nanos() / 4,
            "cached prefix should beat prefill: hit {hit_cost} vs miss {miss_cost}"
        );
        assert_eq!(e.stats().prefix_hits, 1);
        assert_eq!(e.stats().prefix_misses, 1);
        // Both conversations opened with identical (shared-prefix) state.
        let got = e.get_many(&[1, 2]).unwrap();
        assert_eq!(got[0], got[1]);
        assert_eq!(got[0].as_ref().unwrap().len(), e.cost().bytes(128));
    }

    #[test]
    fn cold_conversations_restore_from_remote() {
        let mut e = engine(tight());
        drive(&mut e, 24, 4); // 24 convs × (32+3·16)·16 tokens ≫ 64 KiB local
        let stats = e.stats();
        assert!(stats.demote_to_remote > 0, "tight local budget must spill");
        assert!(
            stats.remote_fetches > 0,
            "round-robin re-touch must restore from remote: {stats:?}"
        );
        assert_eq!(stats.recomputes, 0, "tiered serving never recomputes");
        let occ = e.occupancy();
        assert!(occ.local_bytes <= 64 * 1024);
        assert_eq!(
            occ.local_convs + occ.remote_convs + occ.disk_convs,
            24,
            "every conversation lives in exactly one tier"
        );
    }

    #[test]
    fn remote_budget_overflows_to_disk() {
        let mut e = engine(TieredKvConfig {
            remote_capacity: ByteSize::from_kib(32),
            ..tight()
        });
        drive(&mut e, 24, 4);
        let stats = e.stats();
        assert!(stats.demote_to_disk > 0, "remote budget must overflow to disk");
        assert!(e.occupancy().remote_bytes <= 32 * 1024);
    }

    #[test]
    fn disk_only_baseline_restores_from_disk() {
        let mut e = engine(TieredKvConfig {
            spill: SpillPolicy::DiskOnly,
            ..tight()
        });
        drive(&mut e, 24, 4);
        let stats = e.stats();
        assert!(stats.disk_fetches > 0, "{stats:?}");
        assert_eq!(stats.remote_fetches, 0);
        assert_eq!(e.occupancy().remote_convs, 0);
    }

    #[test]
    fn drop_cold_baseline_recomputes_history() {
        let mut e = engine(TieredKvConfig {
            spill: SpillPolicy::DropCold,
            ..tight()
        });
        drive(&mut e, 24, 4);
        let stats = e.stats();
        assert!(stats.recomputes > 0, "{stats:?}");
        assert!(stats.recomputed_tokens > 0);
        assert_eq!(stats.remote_fetches + stats.disk_fetches, 0);
        assert_eq!(e.occupancy().remote_convs + e.occupancy().disk_convs, 0);
    }

    #[test]
    fn restores_are_byte_exact() {
        let mut e = engine(tight());
        drive(&mut e, 24, 4);
        // Whatever tier each conversation sits in, its bytes must match
        // the canonical synthesis for its context length.
        let sessions: Vec<u64> = (0..24).collect();
        let got = e.get_many(&sessions).unwrap();
        for (session, bytes) in sessions.iter().zip(&got) {
            let bytes = bytes.as_ref().expect("all conversations stored");
            assert_eq!(
                bytes,
                &e.synth_context(*session, bytes.len()),
                "conversation {session} corrupted in tiering"
            );
        }
    }

    #[test]
    fn identical_runs_demote_identically() {
        let digest = |_: ()| {
            let mut e = engine(tight());
            drive(&mut e, 24, 4);
            (e.demotion_digest(), e.stats())
        };
        assert_eq!(digest(()), digest(()));
        let (d, stats) = digest(());
        assert!(d.starts_with(&format!("n={} ", e_demotions(&stats))));
    }

    fn e_demotions(stats: &TieredKvStats) -> u64 {
        stats.demote_to_remote + stats.demote_to_disk + stats.drops
    }

    #[test]
    fn retire_frees_every_tier() {
        let mut e = engine(tight());
        drive(&mut e, 24, 4);
        for session in 0..24 {
            e.retire(session);
        }
        let occ = e.occupancy();
        assert_eq!(occ.local_convs + occ.remote_convs + occ.disk_convs, 0);
        assert_eq!(occ.local_bytes, 0);
        assert_eq!(occ.remote_bytes, 0);
        // No conversation chunks left behind in disaggregated memory.
        for session in 0..24 {
            assert!(!chunked::contains_chunked(&e.dm, e.rookie, session));
            assert!(!chunked::contains_chunked(&e.dm, e.veteran, session));
        }
    }

    #[test]
    fn tenant_split_routes_veterans() {
        let dm = Arc::new(DisaggregatedMemory::new(ClusterConfig::small()).unwrap());
        let rookie = dm.servers()[0];
        let veteran = dm.servers()[1];
        let mut e = TieredKvEngine::with_servers(dm, rookie, veteran, tight());
        drive(&mut e, 24, 4); // 4 completed turns > long_running_turns=3
        // All spilled conversations completed ≥3 turns by their last
        // demotion or were demoted early as rookies; at least the final
        // state of long-lived sessions must sit under the veteran server.
        let veteran_cold = e
            .cold
            .values()
            .filter(|c| c.server == e.veteran)
            .count();
        assert!(veteran_cold > 0, "long-running conversations use the veteran tenant");
    }

    #[test]
    fn put_get_many_roundtrip_under_churn() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::new(
            proptest::test_runner::Config::with_cases(16),
        );
        let ops = proptest::collection::vec(
            (0u8..3, 0u64..16, 1usize..32_000),
            1..60,
        );
        runner
            .run(&ops, |ops| {
                let mut e = engine(TieredKvConfig {
                    local_capacity: ByteSize::from_kib(32),
                    remote_capacity: ByteSize::from_kib(64),
                    ..TieredKvConfig::default()
                });
                let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
                for (kind, session, len) in ops {
                    match kind {
                        0 => {
                            let value: Vec<u8> = (0..len)
                                .map(|i| splitmix64(session ^ i as u64) as u8)
                                .collect();
                            e.put_many(vec![(session, value.clone())]).unwrap();
                            model.insert(session, value);
                        }
                        1 => {
                            let got = e.get_many(&[session]).unwrap();
                            prop_assert_eq!(got[0].as_ref(), model.get(&session));
                        }
                        _ => {
                            e.retire(session);
                            model.remove(&session);
                        }
                    }
                    // Tier-demotion invariants hold after every op.
                    let occ = e.occupancy();
                    prop_assert_eq!(
                        occ.local_convs + occ.remote_convs + occ.disk_convs,
                        model.len(),
                        "each session in exactly one tier"
                    );
                    let local_sum: u64 =
                        e.local.values().map(|c| c.bytes.len() as u64).sum();
                    prop_assert_eq!(occ.local_bytes, local_sum);
                    prop_assert_eq!(e.local_used, local_sum);
                    for (&session, cold) in &e.cold {
                        prop_assert!(
                            !e.local.contains_key(&session),
                            "session {} in two tiers",
                            session
                        );
                        prop_assert!(
                            chunked::contains_chunked(&e.dm, cold.server, session),
                            "cold session {} missing from disaggregated memory",
                            session
                        );
                    }
                    prop_assert!(occ.remote_bytes <= 64 * 1024);
                }
                // Closing audit: every session readable, byte-exact.
                let sessions: Vec<u64> = {
                    let mut s: Vec<u64> = model.keys().copied().collect();
                    s.sort_unstable();
                    s
                };
                let got = e.get_many(&sessions).unwrap();
                for (session, bytes) in sessions.iter().zip(&got) {
                    prop_assert_eq!(bytes.as_ref(), model.get(session));
                }
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn replayed_op_sequences_demote_identically() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::new(
            proptest::test_runner::Config::with_cases(8),
        );
        let ops = proptest::collection::vec((0u64..16, 1usize..24_000), 1..40);
        runner
            .run(&ops, |ops| {
                let run = |ops: &[(u64, usize)]| {
                    let mut e = engine(TieredKvConfig {
                        local_capacity: ByteSize::from_kib(32),
                        ..TieredKvConfig::default()
                    });
                    for &(session, len) in ops {
                        e.put_many(vec![(session, vec![0xa5; len])]).unwrap();
                    }
                    (e.demotion_digest(), e.stats())
                };
                prop_assert_eq!(run(&ops), run(&ops));
                Ok(())
            })
            .unwrap();
    }
}
