//! A key-value cache on disaggregated memory.
//!
//! The paper names two killer applications for partial memory
//! disaggregation (§III): memory swapping and "key-value based memory
//! caching". `dmem-swap` covers the first; this crate implements the
//! second *directly* — a Memcached-style cache whose heap holds only the
//! hot set, with cold entries demoted to disaggregated memory (node
//! shared pool → cluster remote memory → disk) instead of being dropped.
//! A cache "miss" that would cost a backing-database round trip in
//! production becomes a disaggregated-memory fetch at micro-second cost.
//!
//! # Examples
//!
//! ```
//! use dmem_core::DisaggregatedMemory;
//! use dmem_kv::KvCache;
//! use dmem_types::{ByteSize, ClusterConfig};
//! use std::sync::Arc;
//!
//! let dm = Arc::new(DisaggregatedMemory::new(ClusterConfig::small())?);
//! let server = dm.servers()[0];
//! let mut cache = KvCache::new(dm, server, ByteSize::from_kib(64));
//!
//! cache.set("user:42", b"profile bytes".to_vec())?;
//! assert_eq!(cache.get("user:42")?.as_deref(), Some(&b"profile bytes"[..]));
//! # Ok::<(), dmem_types::DmemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod store;
mod tiered;

pub use store::{KvCache, KvCacheStats};
pub use tiered::{
    LlmCostModel, SpillPolicy, TierOccupancy, TieredKvConfig, TieredKvEngine, TieredKvStats,
    TurnServed,
};
