//! # dmem-alloc — object-granularity far memory
//!
//! The paper charges paging-based disaggregation with **access
//! amplification**: moving a whole 4 KB page across the fabric to
//! touch a few dozen bytes. This crate is the object-granularity
//! answer (ROADMAP item 3, Clio's headline tradeoff): a
//! dlmalloc-style size-class allocator whose backing "sbrk" is the
//! existing cluster — every extension of the break claims address
//! space whose bytes live as [`dmem_core::DisaggregatedMemory`]
//! entries, placed, replicated, QoS-admitted and fault-retried by the
//! tiers that already exist.
//!
//! Layering:
//!
//! - [`classes`] — the pure allocator core: size classes, per-class
//!   LIFO free lists, carved-page directory, and an address-ordered
//!   free-run map with coalescing and break trimming. No cluster
//!   dependency; all invariants property-testable in isolation.
//! - [`heap`] — [`ObjectHeap`], binding an arena to one virtual
//!   server at either **object** granularity (one entry per object;
//!   `update` is a pure write) or **page** granularity (whole 4 KiB
//!   page images with read-modify-write — the paging baseline).
//!
//! Amplification and fragmentation counters flow through
//! [`dmem_sim::AllocTelemetry`] into the cluster's metrics registry
//! (one relaxed atomic load when disarmed), so telemetry windows,
//! timelines and `dmem_top --alloc` observe the heap for free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod heap;

pub use classes::{class_of, ArenaMap, LiveObject, SlotKind, CLASSES, PAGE_BYTES};
pub use heap::{
    Granularity, HeapConfig, HeapStats, ObjectHeap, OpCounts, HEADER_BYTES, MAX_RUN_PAGES,
    RUN_TAG,
};
