//! The pure allocator core: dlmalloc-style size classes, per-class free
//! lists, and an address-ordered free-run map with coalescing and break
//! trimming.
//!
//! Nothing in this module touches the cluster — [`ArenaMap`] hands out
//! and reclaims *addresses* in a flat object address space measured in
//! [`PAGE_SIZE`] pages, and the [`crate::ObjectHeap`] layers the backing
//! store on top. Keeping the bookkeeping pure makes the allocator
//! invariants (no overlap, reuse determinism, exact accounting)
//! property-testable without spinning up a cluster, and keeps every
//! structure deterministic: `BTreeMap` run maps, LIFO `Vec` bins, no
//! hashing anywhere.

use std::collections::BTreeMap;

use dmem_types::PAGE_SIZE;

/// The small size classes, in bytes. Every class is a multiple of 16 so
/// slot addresses stay 16-byte aligned (the heap packs `addr >> 4` into
/// backing-store keys). The progression is dlmalloc's: dense at the
/// small end where internal fragmentation hurts most, roughly
/// geometric above 256 B, capped at one page.
pub const CLASSES: [u32; 15] = [
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1360, 2048, 4096,
];

/// Pages claimed from the break per carve. Purely a bookkeeping unit —
/// pages are carved one at a time; this bounds nothing.
pub const PAGE_BYTES: u64 = PAGE_SIZE as u64;

/// The smallest class that fits `len` bytes, or `None` when the request
/// needs a multi-page run.
#[must_use]
pub fn class_of(len: usize) -> Option<usize> {
    if len == 0 {
        return Some(0);
    }
    CLASSES.iter().position(|&c| len <= c as usize)
}

/// Slot shape of a live object: a small size-class slot or a contiguous
/// multi-page run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SlotKind {
    /// Index into [`CLASSES`].
    Class(usize),
    /// Contiguous run of whole pages.
    Run(u64),
}

impl SlotKind {
    /// Capacity of the slot in bytes.
    #[must_use]
    pub fn capacity(self) -> u64 {
        match self {
            SlotKind::Class(idx) => u64::from(CLASSES[idx]),
            SlotKind::Run(pages) => pages * PAGE_BYTES,
        }
    }
}

/// A live object: where it sits and how many bytes the caller asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveObject {
    /// Slot shape (class or page run).
    pub kind: SlotKind,
    /// Requested payload length in bytes (framing excluded).
    pub len: u64,
}

/// Per-page carve state for pages handed to a size class.
#[derive(Debug, Clone, Copy)]
struct ClassPage {
    class: usize,
    live_slots: u32,
}

/// Deterministic arena map: the sbrk high-water mark, per-class free
/// lists, carved-page directory, and the coalesced free-run map.
#[derive(Debug, Default)]
pub struct ArenaMap {
    /// sbrk break, in pages. Trimmed back down when the topmost run
    /// frees, so the map is a pure function of the live set plus bin
    /// history.
    break_pages: u64,
    /// Per-class LIFO free lists of slot addresses.
    bins: Vec<Vec<u64>>,
    /// Pages currently carved for a size class, keyed by page index.
    class_pages: BTreeMap<u64, ClassPage>,
    /// Free page runs below the break: `start_page -> run_pages`,
    /// address-ordered, adjacent runs always merged.
    free_runs: BTreeMap<u64, u64>,
    /// Live objects keyed by byte address.
    live: BTreeMap<u64, LiveObject>,
}

impl ArenaMap {
    /// An empty arena (break at zero).
    #[must_use]
    pub fn new() -> Self {
        ArenaMap {
            break_pages: 0,
            bins: vec![Vec::new(); CLASSES.len()],
            class_pages: BTreeMap::new(),
            free_runs: BTreeMap::new(),
            live: BTreeMap::new(),
        }
    }

    /// Reserves a slot for an object whose *stored* footprint is
    /// `stored_len` bytes and whose caller-visible length is `len`.
    /// Returns the object's byte address.
    pub fn reserve(&mut self, stored_len: usize, len: u64) -> (u64, SlotKind) {
        let kind = match class_of(stored_len) {
            Some(class) => SlotKind::Class(class),
            None => {
                let pages = (stored_len as u64).div_ceil(PAGE_BYTES);
                SlotKind::Run(pages)
            }
        };
        let addr = match kind {
            SlotKind::Class(class) => self.reserve_class_slot(class),
            SlotKind::Run(pages) => self.take_run(pages) * PAGE_BYTES,
        };
        self.live.insert(addr, LiveObject { kind, len });
        (addr, kind)
    }

    /// Whether `page` is currently carved for a size class (still has
    /// live slots). The heap's page-granularity free path uses this to
    /// decide between zeroing a slot and dropping the whole page image.
    #[must_use]
    pub fn page_carved(&self, page: u64) -> bool {
        self.class_pages.contains_key(&page)
    }

    /// Releases the object at `addr`, returning its record. The slot
    /// goes back to its bin; a fully-free carved page or a freed run
    /// re-enters the run map with coalescing and break trimming.
    ///
    /// Returns `None` if no live object sits at `addr`.
    pub fn release(&mut self, addr: u64) -> Option<LiveObject> {
        let obj = self.live.remove(&addr)?;
        match obj.kind {
            SlotKind::Class(_) => {
                let page = addr / PAGE_BYTES;
                let emptied = {
                    let cp = self
                        .class_pages
                        .get_mut(&page)
                        .expect("live class slot on an uncarved page");
                    cp.live_slots -= 1;
                    cp.live_slots == 0
                };
                if emptied {
                    // Coalesce: pull the page's remaining free slots out
                    // of the bin and return the whole page to the run map.
                    let cp = self.class_pages.remove(&page).expect("carved page");
                    self.bins[cp.class].retain(|a| a / PAGE_BYTES != page);
                    self.free_run(page, 1);
                } else {
                    let cp = self.class_pages[&page];
                    self.bins[cp.class].push(addr);
                }
            }
            SlotKind::Run(pages) => self.free_run(addr / PAGE_BYTES, pages),
        }
        Some(obj)
    }

    /// The live object at `addr`, if any.
    #[must_use]
    pub fn lookup(&self, addr: u64) -> Option<&LiveObject> {
        self.live.get(&addr)
    }

    /// Iterates live objects in address order.
    pub fn live_objects(&self) -> impl Iterator<Item = (u64, &LiveObject)> {
        self.live.iter().map(|(a, o)| (*a, o))
    }

    /// Updates the recorded caller-visible length of a live object
    /// (slot shape is unchanged; the heap enforces that the new stored
    /// footprint still fits).
    pub fn set_len(&mut self, addr: u64, len: u64) {
        if let Some(obj) = self.live.get_mut(&addr) {
            obj.len = len;
        }
    }

    /// Number of live objects.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Total caller-requested bytes across live objects.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.live.values().map(|o| o.len).sum()
    }

    /// Total slot capacity across live objects — the internal
    /// fragmentation denominator.
    #[must_use]
    pub fn slot_bytes(&self) -> u64 {
        self.live.values().map(|o| o.kind.capacity()).sum()
    }

    /// Bytes of address space currently claimed from the break and not
    /// sitting in the free-run map: carved class pages (even partially
    /// free ones) plus live runs — the external fragmentation
    /// denominator.
    #[must_use]
    pub fn reserved_bytes(&self) -> u64 {
        let free: u64 = self.free_runs.values().sum();
        (self.break_pages - free) * PAGE_BYTES
    }

    /// Current break, in pages.
    #[must_use]
    pub fn break_pages(&self) -> u64 {
        self.break_pages
    }

    /// FNV-1a digest of the structural state: every live object, the
    /// break, and the free-run map. Bin order is deliberately excluded —
    /// it is history-dependent LIFO, while this digest must also match a
    /// map rebuilt from a backing-store scan.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.break_pages);
        for (addr, obj) in &self.live {
            eat(*addr);
            eat(obj.len);
            match obj.kind {
                SlotKind::Class(c) => {
                    eat(0);
                    eat(c as u64);
                }
                SlotKind::Run(p) => {
                    eat(1);
                    eat(p);
                }
            }
        }
        for (start, len) in &self.free_runs {
            eat(*start);
            eat(*len);
        }
        h
    }

    /// Rebuilds an arena map from a scan of the backing store: the live
    /// set alone. The break becomes the highest claimed page, gaps
    /// become free runs, and partially-occupied class pages get their
    /// free slots re-binned in descending address order (so pops come
    /// out address-ordered). The structural [`Self::digest`] of the
    /// rebuilt map equals the original's.
    #[must_use]
    pub fn rebuild(objects: &[(u64, SlotKind, u64)]) -> Self {
        let mut map = ArenaMap::new();
        for &(addr, kind, len) in objects {
            map.live.insert(addr, LiveObject { kind, len });
            let page = addr / PAGE_BYTES;
            match kind {
                SlotKind::Class(class) => {
                    let cp = map
                        .class_pages
                        .entry(page)
                        .or_insert(ClassPage { class, live_slots: 0 });
                    assert_eq!(cp.class, class, "mixed classes on page {page}");
                    cp.live_slots += 1;
                }
                SlotKind::Run(_) => {}
            }
        }
        // Claimed pages: carved class pages plus every page of a run.
        let mut claimed: BTreeMap<u64, u64> = BTreeMap::new();
        for page in map.class_pages.keys() {
            claimed.insert(*page, 1);
        }
        for (addr, obj) in &map.live {
            if let SlotKind::Run(pages) = obj.kind {
                claimed.insert(addr / PAGE_BYTES, pages);
            }
        }
        map.break_pages = claimed
            .iter()
            .last()
            .map_or(0, |(start, pages)| start + pages);
        // Gaps between claimed extents become free runs.
        let mut cursor = 0u64;
        for (start, pages) in &claimed {
            if *start > cursor {
                map.free_runs.insert(cursor, start - cursor);
            }
            cursor = start + pages;
        }
        // Re-bin the unoccupied slots of partially-free class pages,
        // descending so LIFO pops walk ascending addresses.
        for (page, cp) in &map.class_pages {
            let class_bytes = u64::from(CLASSES[cp.class]);
            let slots = PAGE_BYTES / class_bytes;
            for slot in (0..slots).rev() {
                let addr = page * PAGE_BYTES + slot * class_bytes;
                if !map.live.contains_key(&addr) {
                    map.bins[cp.class].push(addr);
                }
            }
        }
        map
    }

    fn reserve_class_slot(&mut self, class: usize) -> u64 {
        if let Some(addr) = self.bins[class].pop() {
            let page = addr / PAGE_BYTES;
            self.class_pages
                .get_mut(&page)
                .expect("binned slot on an uncarved page")
                .live_slots += 1;
            return addr;
        }
        // Carve a fresh page for this class: slots pushed in descending
        // address order so pops hand out ascending addresses.
        let page = self.take_run(1);
        self.class_pages.insert(page, ClassPage { class, live_slots: 1 });
        let class_bytes = u64::from(CLASSES[class]);
        let slots = PAGE_BYTES / class_bytes;
        for slot in (1..slots).rev() {
            self.bins[class].push(page * PAGE_BYTES + slot * class_bytes);
        }
        page * PAGE_BYTES
    }

    /// First-fit over the address-ordered run map; extends the break
    /// when nothing fits (the "sbrk" of this allocator).
    fn take_run(&mut self, pages: u64) -> u64 {
        let found = self
            .free_runs
            .iter()
            .find(|(_, len)| **len >= pages)
            .map(|(start, len)| (*start, *len));
        if let Some((start, len)) = found {
            self.free_runs.remove(&start);
            if len > pages {
                self.free_runs.insert(start + pages, len - pages);
            }
            return start;
        }
        let start = self.break_pages;
        self.break_pages += pages;
        start
    }

    /// Returns a run to the free map, merging with both neighbours and
    /// trimming the break if the merged run ends at the top.
    fn free_run(&mut self, start: u64, pages: u64) {
        let mut start = start;
        let mut pages = pages;
        if let Some((prev_start, prev_len)) = self
            .free_runs
            .range(..start)
            .next_back()
            .map(|(s, l)| (*s, *l))
        {
            if prev_start + prev_len == start {
                self.free_runs.remove(&prev_start);
                start = prev_start;
                pages += prev_len;
            }
        }
        if let Some(next_len) = self.free_runs.remove(&(start + pages)) {
            pages += next_len;
        }
        if start + pages == self.break_pages {
            // sbrk trim: the freed extent touches the break, give the
            // address space back instead of keeping a top-of-heap run.
            self.break_pages = start;
        } else {
            self.free_runs.insert(start, pages);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_of_maps_boundaries() {
        assert_eq!(class_of(0), Some(0));
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(16), Some(0));
        assert_eq!(class_of(17), Some(1));
        assert_eq!(class_of(4096), Some(CLASSES.len() - 1));
        assert_eq!(class_of(4097), None);
    }

    #[test]
    fn classes_are_16_aligned() {
        for c in CLASSES {
            assert_eq!(c % 16, 0, "class {c} breaks key packing alignment");
        }
    }

    #[test]
    fn slot_reuse_is_lifo() {
        let mut map = ArenaMap::new();
        let (a, _) = map.reserve(64, 64);
        let (b, _) = map.reserve(64, 64);
        assert_ne!(a, b);
        map.release(b).unwrap();
        let (c, _) = map.reserve(64, 64);
        assert_eq!(b, c, "freed slot must be reused first (LIFO)");
    }

    #[test]
    fn empty_class_page_coalesces_and_trims_break() {
        let mut map = ArenaMap::new();
        let (a, _) = map.reserve(128, 128);
        let (b, _) = map.reserve(128, 128);
        assert_eq!(map.break_pages(), 1);
        map.release(a).unwrap();
        map.release(b).unwrap();
        assert_eq!(map.break_pages(), 0, "empty page must coalesce + trim");
        assert_eq!(map.reserved_bytes(), 0);
    }

    #[test]
    fn run_coalescing_merges_neighbours() {
        let mut map = ArenaMap::new();
        let (a, _) = map.reserve(2 * PAGE_SIZE, 2 * PAGE_BYTES);
        let (b, _) = map.reserve(3 * PAGE_SIZE, 3 * PAGE_BYTES);
        let (c, _) = map.reserve(PAGE_SIZE + 1, PAGE_BYTES + 1);
        assert_eq!(map.break_pages(), 7);
        // Free the middle run, then the first: they must merge into one
        // 5-page run, then trimming kicks in when the last run frees.
        map.release(b).unwrap();
        map.release(a).unwrap();
        let (d, _) = map.reserve(5 * PAGE_SIZE, 5 * PAGE_BYTES);
        assert_eq!(d, 0, "coalesced 5-page hole must satisfy a 5-page run");
        map.release(d).unwrap();
        map.release(c).unwrap();
        assert_eq!(map.break_pages(), 0);
    }

    #[test]
    fn rebuild_matches_digest() {
        let mut map = ArenaMap::new();
        let mut addrs = Vec::new();
        for i in 0..40usize {
            let len = 16 + (i * 37) % 6000;
            addrs.push(map.reserve(len + 1, len as u64).0);
        }
        for i in (0..40).step_by(3) {
            map.release(addrs[i]).unwrap();
        }
        let objects: Vec<(u64, SlotKind, u64)> = map
            .live_objects()
            .map(|(a, o)| (a, o.kind, o.len))
            .collect();
        let rebuilt = ArenaMap::rebuild(&objects);
        assert_eq!(rebuilt.digest(), map.digest());
        assert_eq!(rebuilt.live_bytes(), map.live_bytes());
        assert_eq!(rebuilt.reserved_bytes(), map.reserved_bytes());
    }
}
