//! [`ObjectHeap`]: the object-granularity far-memory heap.
//!
//! The heap binds an [`ArenaMap`] (pure address bookkeeping) to one
//! virtual server of a [`DisaggregatedMemory`] cluster. Its "sbrk" is
//! conceptual: extending the break claims fresh page indices in the
//! flat object address space, and the bytes themselves live as cluster
//! entries — placed, replicated, QoS-admitted and fault-retried by the
//! existing tiers.
//!
//! Two backing granularities share the identical allocator, isolating
//! transfer granularity as the only variable:
//!
//! - **Object**: every object is its own entry (key packs the 16-byte-
//!   aligned address). A `get` moves exactly the framed object; an
//!   `update` is a pure write — no read-modify-write at all.
//! - **Page**: entries are whole [`PAGE_SIZE`] page images, the paging
//!   baseline. Every op reads and/or writes each 4 KiB page it touches,
//!   reproducing the access amplification the paper charges against
//!   paging-based disaggregation.
//!
//! Each stored object carries a 2-byte frame header `[kind, aux]`
//! (class index, or `0xff` + run length in pages) so a recovery scan
//! can rebuild the allocator metadata from the backing store alone —
//! see [`ObjectHeap::reconstruct`].

use std::sync::Arc;

use dmem_core::{DisaggregatedMemory, TierPreference};
use dmem_sim::{AllocTelemetry, MetricsRegistry};
use dmem_types::{DmemError, DmemResult, EntryId, ServerId, PAGE_SIZE};

use crate::classes::{class_of, ArenaMap, SlotKind, CLASSES, PAGE_BYTES};

/// Frame header: `[kind, aux]` — kind is the class index or
/// [`RUN_TAG`], aux is the run length in pages (0 for class slots).
pub const HEADER_BYTES: usize = 2;

/// Frame kind byte marking a multi-page run.
pub const RUN_TAG: u8 = 0xff;

/// Largest multi-page run the 1-byte aux field can describe (1 MiB
/// objects — far above anything the size-class path should see).
pub const MAX_RUN_PAGES: u64 = 255;

/// Backing-store granularity of a heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One cluster entry per object; transfers move only object bytes.
    Object,
    /// One cluster entry per 4 KiB page image; transfers move whole
    /// pages (the paging baseline).
    Page,
}

impl Granularity {
    /// Short label used in reports and CSVs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Granularity::Object => "object",
            Granularity::Page => "page",
        }
    }
}

/// Heap construction knobs.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Backing granularity.
    pub granularity: Granularity,
    /// Base of the heap's key namespace on its server. Object keys are
    /// `key_base + (addr >> 4)`, page keys `key_base + page_index`.
    pub key_base: u64,
    /// Tier preference for backing puts.
    pub pref: TierPreference,
}

impl HeapConfig {
    /// A config for the given granularity with the default key base
    /// (`1 << 56`) and `Auto` placement.
    #[must_use]
    pub fn new(granularity: Granularity) -> Self {
        HeapConfig {
            granularity,
            key_base: 1 << 56,
            pref: TierPreference::Auto,
        }
    }

    /// Same config with an explicit tier preference.
    #[must_use]
    pub fn with_pref(mut self, pref: TierPreference) -> Self {
        self.pref = pref;
        self
    }
}

/// Operation counters of one heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Completed `alloc`/`alloc_many` objects.
    pub alloc: u64,
    /// Completed frees.
    pub free: u64,
    /// Completed reads.
    pub get: u64,
    /// Completed in-place updates.
    pub update: u64,
}

/// Point-in-time accounting snapshot of a heap.
#[derive(Debug, Clone)]
pub struct HeapStats {
    /// Backing granularity.
    pub granularity: Granularity,
    /// QoS tenant owning the heap's server, when an engine is installed.
    pub tenant: Option<String>,
    /// Live object count.
    pub live_objects: usize,
    /// Caller-requested bytes across live objects.
    pub live_bytes: u64,
    /// Slot capacity across live objects (internal-frag denominator).
    pub slot_bytes: u64,
    /// Address space claimed from the break (external-frag denominator).
    pub reserved_bytes: u64,
    /// Bytes moved through the cluster by heap ops.
    pub fetched_bytes: u64,
    /// Caller-useful bytes of those ops.
    pub useful_bytes: u64,
    /// Per-verb op counts.
    pub ops: OpCounts,
}

impl HeapStats {
    /// Access amplification: fabric-moved bytes per useful byte.
    #[must_use]
    pub fn amplification(&self) -> f64 {
        if self.useful_bytes == 0 {
            return 0.0;
        }
        self.fetched_bytes as f64 / self.useful_bytes as f64
    }

    /// Internal fragmentation (slot slack) as a percentage.
    #[must_use]
    pub fn internal_frag_pct(&self) -> f64 {
        if self.slot_bytes == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.live_bytes as f64 / self.slot_bytes as f64)
    }

    /// Total fragmentation (live bytes vs reserved address space) as a
    /// percentage.
    #[must_use]
    pub fn total_frag_pct(&self) -> f64 {
        if self.reserved_bytes == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.live_bytes as f64 / self.reserved_bytes as f64)
    }
}

/// An object-granularity far-memory heap over one cluster server.
pub struct ObjectHeap {
    dm: Arc<DisaggregatedMemory>,
    server: ServerId,
    config: HeapConfig,
    arena: ArenaMap,
    telemetry: AllocTelemetry,
    tenant: Option<String>,
    fetched_bytes: u64,
    useful_bytes: u64,
    ops: OpCounts,
}

impl ObjectHeap {
    /// Binds a fresh heap to `server`. If a QoS engine is installed on
    /// the cluster the heap resolves and records its tenant, so every
    /// backing put flows through that tenant's quota/admission path.
    #[must_use]
    pub fn new(dm: Arc<DisaggregatedMemory>, server: ServerId, config: HeapConfig) -> Self {
        let tenant = dm
            .qos()
            .map(|engine| engine.tenant_name(engine.tenant_of(server)));
        ObjectHeap {
            dm,
            server,
            config,
            arena: ArenaMap::new(),
            telemetry: AllocTelemetry::default(),
            tenant,
            fetched_bytes: 0,
            useful_bytes: 0,
            ops: OpCounts::default(),
        }
    }

    /// Arms the `alloc.*` counter family on `registry` (normally the
    /// cluster's own, so telemetry windows and `dmem_top` pick it up).
    /// Until armed, every op pays exactly one relaxed atomic load.
    pub fn arm_telemetry(&self, registry: &MetricsRegistry) {
        self.telemetry.arm(registry);
    }

    /// The heap's server.
    #[must_use]
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Allocates `data` into the heap, returning the object address.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures (the reservation is rolled
    /// back); rejects objects larger than [`MAX_RUN_PAGES`] pages.
    pub fn alloc(&mut self, data: &[u8]) -> DmemResult<u64> {
        let stored_len = data.len() + HEADER_BYTES;
        if (stored_len as u64).div_ceil(PAGE_BYTES) > MAX_RUN_PAGES {
            return Err(DmemError::Unsupported {
                op: format!("alloc of {} bytes (> {MAX_RUN_PAGES} pages)", data.len()),
            });
        }
        let (addr, kind) = self.arena.reserve(stored_len, data.len() as u64);
        let framed = frame(kind, data);
        let result = match self.config.granularity {
            Granularity::Object => self
                .dm
                .put_pref(self.server, self.object_key(addr), framed, self.config.pref)
                .map(|()| {
                    self.fetched_bytes += stored_len as u64;
                }),
            Granularity::Page => self.write_span(addr, &framed),
        };
        if let Err(err) = result {
            self.arena.release(addr);
            return Err(err);
        }
        self.useful_bytes += data.len() as u64;
        self.ops.alloc += 1;
        self.note_op(0, stored_len as u64, data.len() as u64);
        Ok(addr)
    }

    /// Allocates a batch, using the cluster's batched put verb in
    /// object mode so small objects share fabric round-trips.
    ///
    /// # Errors
    ///
    /// Propagates the first backing failure; prior reservations of the
    /// failed batch are rolled back.
    pub fn alloc_many(&mut self, items: &[Vec<u8>]) -> DmemResult<Vec<u64>> {
        match self.config.granularity {
            Granularity::Page => items.iter().map(|d| self.alloc(d)).collect(),
            Granularity::Object => {
                let mut addrs = Vec::with_capacity(items.len());
                let mut batch = Vec::with_capacity(items.len());
                let mut stored = 0u64;
                let mut useful = 0u64;
                for data in items {
                    let stored_len = data.len() + HEADER_BYTES;
                    if (stored_len as u64).div_ceil(PAGE_BYTES) > MAX_RUN_PAGES {
                        for addr in &addrs {
                            self.arena.release(*addr);
                        }
                        return Err(DmemError::Unsupported {
                            op: format!("alloc of {} bytes (> {MAX_RUN_PAGES} pages)", data.len()),
                        });
                    }
                    let (addr, kind) = self.arena.reserve(stored_len, data.len() as u64);
                    addrs.push(addr);
                    batch.push((self.object_key(addr), frame(kind, data)));
                    stored += stored_len as u64;
                    useful += data.len() as u64;
                }
                if let Err(err) = self.dm.put_batch(self.server, batch, self.config.pref) {
                    for addr in &addrs {
                        self.arena.release(*addr);
                    }
                    return Err(err);
                }
                self.fetched_bytes += stored;
                self.useful_bytes += useful;
                self.ops.alloc += items.len() as u64;
                self.note_op(0, stored, useful);
                Ok(addrs)
            }
        }
    }

    /// Reads the object at `addr` byte-exactly.
    ///
    /// # Errors
    ///
    /// `EntryNotFound` when no live object sits at `addr`; propagates
    /// backing-store failures.
    pub fn get(&mut self, addr: u64) -> DmemResult<Vec<u8>> {
        let obj = *self
            .arena
            .lookup(addr)
            .ok_or_else(|| self.not_found(addr))?;
        let stored_len = obj.len as usize + HEADER_BYTES;
        let framed = match self.config.granularity {
            Granularity::Object => {
                let bytes = self.dm.get(self.server, self.object_key(addr))?;
                self.fetched_bytes += bytes.len() as u64;
                bytes
            }
            Granularity::Page => self.read_span(addr, stored_len)?,
        };
        let entry = EntryId::new(self.server, self.object_key(addr));
        let data = unframe(&framed, obj.kind, stored_len, entry)?;
        self.useful_bytes += obj.len;
        self.ops.get += 1;
        self.note_op(2, stored_len as u64, obj.len);
        Ok(data)
    }

    /// Batched read; uses the cluster's batched get verb in object mode.
    ///
    /// # Errors
    ///
    /// Fails on the first missing address or backing failure.
    pub fn get_many(&mut self, addrs: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
        match self.config.granularity {
            Granularity::Page => addrs.iter().map(|a| self.get(*a)).collect(),
            Granularity::Object => {
                let mut objs = Vec::with_capacity(addrs.len());
                for addr in addrs {
                    objs.push(*self.arena.lookup(*addr).ok_or_else(|| self.not_found(*addr))?);
                }
                let keys: Vec<u64> = addrs.iter().map(|a| self.object_key(*a)).collect();
                let framed = self.dm.get_batch(self.server, &keys)?;
                let mut out = Vec::with_capacity(addrs.len());
                let mut stored = 0u64;
                let mut useful = 0u64;
                for ((bytes, obj), addr) in framed.into_iter().zip(objs.iter()).zip(addrs) {
                    let stored_len = obj.len as usize + HEADER_BYTES;
                    stored += bytes.len() as u64;
                    useful += obj.len;
                    let entry = EntryId::new(self.server, self.object_key(*addr));
                    out.push(unframe(&bytes, obj.kind, stored_len, entry)?);
                }
                self.fetched_bytes += stored;
                self.useful_bytes += useful;
                self.ops.get += addrs.len() as u64;
                self.note_op(2, stored, useful);
                Ok(out)
            }
        }
    }

    /// Overwrites the object at `addr` in place. The new payload must
    /// still fit the slot reserved at alloc time; in object mode this
    /// is a pure write (no read-modify-write).
    ///
    /// # Errors
    ///
    /// `EntryNotFound` for a dead address, `Unsupported` when the new
    /// payload outgrows the slot; propagates backing failures.
    pub fn update(&mut self, addr: u64, data: &[u8]) -> DmemResult<()> {
        let obj = *self
            .arena
            .lookup(addr)
            .ok_or_else(|| self.not_found(addr))?;
        let stored_len = data.len() + HEADER_BYTES;
        if stored_len as u64 > obj.kind.capacity() {
            return Err(DmemError::Unsupported {
                op: format!(
                    "update of {} bytes into a {}-byte slot",
                    data.len(),
                    obj.kind.capacity()
                ),
            });
        }
        let framed = frame(obj.kind, data);
        match self.config.granularity {
            Granularity::Object => {
                self.dm
                    .put_pref(self.server, self.object_key(addr), framed, self.config.pref)?;
                self.fetched_bytes += stored_len as u64;
            }
            Granularity::Page => self.write_span(addr, &framed)?,
        }
        self.arena.set_len(addr, data.len() as u64);
        self.useful_bytes += data.len() as u64;
        self.ops.update += 1;
        self.note_op(3, stored_len as u64, data.len() as u64);
        Ok(())
    }

    /// Alias for [`Self::update`] — the heap's store verb.
    ///
    /// # Errors
    ///
    /// See [`Self::update`].
    pub fn put(&mut self, addr: u64, data: &[u8]) -> DmemResult<()> {
        self.update(addr, data)
    }

    /// Frees the object at `addr`, returning its slot to the bins (and
    /// coalescing runs / trimming the break when extents empty).
    ///
    /// # Errors
    ///
    /// `EntryNotFound` for a dead address; propagates backing failures.
    pub fn free(&mut self, addr: u64) -> DmemResult<()> {
        let obj = self
            .arena
            .release(addr)
            .ok_or_else(|| self.not_found(addr))?;
        match self.config.granularity {
            Granularity::Object => {
                self.dm.delete(self.server, self.object_key(addr))?;
            }
            Granularity::Page => match obj.kind {
                SlotKind::Run(pages) => {
                    let first = addr / PAGE_BYTES;
                    for page in first..first + pages {
                        self.dm.delete(self.server, self.page_key(page))?;
                    }
                }
                SlotKind::Class(_) => {
                    let page = addr / PAGE_BYTES;
                    if self.arena.page_carved(page) {
                        // Slot neighbours live on: zero the slot with a
                        // read-modify-write of the page image.
                        let zeros = vec![0u8; obj.len as usize + HEADER_BYTES];
                        self.write_span(addr, &zeros)?;
                    } else {
                        // Last slot out: the page coalesced away, drop
                        // the whole image.
                        self.dm.delete(self.server, self.page_key(page))?;
                    }
                }
            },
        }
        self.ops.free += 1;
        self.note_op(1, 0, 0);
        Ok(())
    }

    /// Accounting snapshot.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            granularity: self.config.granularity,
            tenant: self.tenant.clone(),
            live_objects: self.arena.live_count(),
            live_bytes: self.arena.live_bytes(),
            slot_bytes: self.arena.slot_bytes(),
            reserved_bytes: self.arena.reserved_bytes(),
            fetched_bytes: self.fetched_bytes,
            useful_bytes: self.useful_bytes,
            ops: self.ops,
        }
    }

    /// Structural digest of the allocator metadata (live set, break,
    /// free runs) — equal before and after [`Self::reconstruct`].
    #[must_use]
    pub fn metadata_digest(&self) -> u64 {
        self.arena.digest()
    }

    /// Live object addresses in address order (test/checker probe).
    #[must_use]
    pub fn live_addrs(&self) -> Vec<u64> {
        self.arena.live_objects().map(|(a, _)| a).collect()
    }

    /// Rebuilds a heap's allocator metadata from the backing store
    /// alone — the fault-survival path. The object bytes are already
    /// replicated by the cluster tiers; this recovery scan walks the
    /// heap's key namespace, reads each frame header, and rebuilds the
    /// arena map. The rebuilt [`Self::metadata_digest`] equals the
    /// original's.
    ///
    /// Only object granularity is reconstructible: page images do not
    /// record slot occupancy individually (exactly the metadata
    /// opacity the paper charges against paging).
    ///
    /// # Errors
    ///
    /// `Unsupported` for page granularity; propagates read failures
    /// and `Corrupt` for undecodable frames.
    pub fn reconstruct(
        dm: Arc<DisaggregatedMemory>,
        server: ServerId,
        config: HeapConfig,
    ) -> DmemResult<Self> {
        if config.granularity != Granularity::Object {
            return Err(DmemError::Unsupported {
                op: "reconstruct of a page-granularity heap".to_string(),
            });
        }
        let mut objects: Vec<(u64, SlotKind, u64)> = Vec::new();
        for (owner, key, _record) in dm.entries_snapshot() {
            if owner != server || key < config.key_base {
                continue;
            }
            let addr = (key - config.key_base) << 4;
            let bytes = dm.get(server, key)?;
            if bytes.len() < HEADER_BYTES {
                return Err(DmemError::Corrupt(EntryId::new(server, key)));
            }
            let kind = match bytes[0] {
                RUN_TAG => SlotKind::Run(u64::from(bytes[1])),
                idx if (idx as usize) < CLASSES.len() => SlotKind::Class(idx as usize),
                _ => return Err(DmemError::Corrupt(EntryId::new(server, key))),
            };
            objects.push((addr, kind, (bytes.len() - HEADER_BYTES) as u64));
        }
        objects.sort_by_key(|(addr, _, _)| *addr);
        let mut heap = ObjectHeap::new(dm, server, config);
        heap.arena = ArenaMap::rebuild(&objects);
        Ok(heap)
    }

    fn object_key(&self, addr: u64) -> u64 {
        debug_assert_eq!(addr % 16, 0, "object addresses are 16-byte aligned");
        self.config.key_base + (addr >> 4)
    }

    fn page_key(&self, page: u64) -> u64 {
        self.config.key_base + page
    }

    fn not_found(&self, addr: u64) -> DmemError {
        DmemError::EntryNotFound(EntryId::new(self.server, self.object_key(addr)))
    }

    /// Page-granularity read of `[addr, addr + len)`: fetches every
    /// overlapped 4 KiB page image and splices the span out.
    fn read_span(&mut self, addr: u64, len: usize) -> DmemResult<Vec<u8>> {
        let first = addr / PAGE_BYTES;
        let last = (addr + len as u64 - 1) / PAGE_BYTES;
        let mut out = Vec::with_capacity(len);
        for page in first..=last {
            let image = self.dm.get(self.server, self.page_key(page))?;
            self.fetched_bytes += PAGE_BYTES;
            let page_start = page * PAGE_BYTES;
            let lo = addr.max(page_start) - page_start;
            let hi = (addr + len as u64).min(page_start + PAGE_BYTES) - page_start;
            out.extend_from_slice(&image[lo as usize..hi as usize]);
        }
        Ok(out)
    }

    /// Page-granularity write of `bytes` at `addr`: read-modify-write
    /// of every overlapped page image (first touch writes a fresh
    /// zero-filled image without a read).
    fn write_span(&mut self, addr: u64, bytes: &[u8]) -> DmemResult<()> {
        let first = addr / PAGE_BYTES;
        let last = (addr + bytes.len() as u64 - 1) / PAGE_BYTES;
        for page in first..=last {
            let pkey = self.page_key(page);
            let mut image = if self.dm.record(self.server, pkey).is_some() {
                let img = self.dm.get(self.server, pkey)?;
                self.fetched_bytes += PAGE_BYTES;
                img
            } else {
                vec![0u8; PAGE_SIZE]
            };
            let page_start = page * PAGE_BYTES;
            let lo = addr.max(page_start);
            let hi = (addr + bytes.len() as u64).min(page_start + PAGE_BYTES);
            let src = (lo - addr) as usize..(hi - addr) as usize;
            let dst = (lo - page_start) as usize..(hi - page_start) as usize;
            image[dst].copy_from_slice(&bytes[src]);
            self.dm
                .put_pref(self.server, pkey, image, self.config.pref)?;
            self.fetched_bytes += PAGE_BYTES;
        }
        Ok(())
    }

    /// Telemetry hook: op kind 0=alloc 1=free 2=get 3=update.
    fn note_op(&self, kind: u8, fetched: u64, useful: u64) {
        if !self.telemetry.is_armed() {
            return;
        }
        self.telemetry.note_transfer(kind, fetched, useful);
        self.telemetry.note_footprint(
            self.arena.live_bytes(),
            self.arena.slot_bytes(),
            self.arena.reserved_bytes(),
        );
    }
}

/// Frames `data` with its slot-kind header.
fn frame(kind: SlotKind, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + HEADER_BYTES);
    match kind {
        SlotKind::Class(idx) => {
            out.push(idx as u8);
            out.push(0);
        }
        SlotKind::Run(pages) => {
            out.push(RUN_TAG);
            out.push(pages as u8);
        }
    }
    out.extend_from_slice(data);
    out
}

/// Strips and verifies the frame header.
fn unframe(framed: &[u8], kind: SlotKind, stored_len: usize, entry: EntryId) -> DmemResult<Vec<u8>> {
    let ok = framed.len() >= stored_len
        && match kind {
            SlotKind::Class(idx) => framed[0] == idx as u8,
            SlotKind::Run(pages) => framed[0] == RUN_TAG && u64::from(framed[1]) == pages,
        };
    if !ok {
        return Err(DmemError::Corrupt(entry));
    }
    Ok(framed[HEADER_BYTES..stored_len].to_vec())
}

/// `class_of` re-exported at heap level for callers sizing workloads.
#[must_use]
pub fn slot_class_of(len: usize) -> Option<usize> {
    class_of(len + HEADER_BYTES)
}
