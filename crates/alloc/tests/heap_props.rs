//! Allocator invariant proptests (ISSUE 9 satellite): no overlap
//! between live objects, free-then-alloc reuse determinism, byte-exact
//! round-trips through both backing granularities, and accounting
//! exactness against an oracle model.

use std::collections::BTreeMap;
use std::sync::Arc;

use dmem_alloc::{ArenaMap, Granularity, HeapConfig, ObjectHeap, HEADER_BYTES};
use dmem_core::DisaggregatedMemory;
use dmem_sim::splitmix64;
use dmem_types::{ClusterConfig, CompressionMode, ServerId};
use proptest::prelude::*;

/// Deterministic payload for (tag, len): reproducible without storing.
fn payload(tag: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| splitmix64(tag ^ (i as u64 / 8)) as u8)
        .collect()
}

fn cluster() -> (Arc<DisaggregatedMemory>, ServerId) {
    let mut config = ClusterConfig::small();
    // Exact byte accounting: stored length must equal framed length.
    config.compression = CompressionMode::Off;
    let dm = Arc::new(DisaggregatedMemory::new(config).expect("cluster"));
    let server = dm.servers()[0];
    (dm, server)
}

/// The op alphabet: (kind, slot-pick, len). kind 0 = alloc, 1 = free,
/// 2 = update, 3 = get. Lengths cross every size class plus multi-page
/// runs.
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u16, usize)>> {
    proptest::collection::vec((0u8..4, 0u16..4096, 1usize..20_000), 1..80)
}

/// Pure-core invariant: live objects never overlap, under any
/// alloc/free interleaving.
#[test]
fn prop_live_objects_never_overlap() {
    let mut runner =
        proptest::test_runner::TestRunner::new(proptest::test_runner::Config::with_cases(64));
    runner
        .run(&ops_strategy(), |ops| {
            let mut map = ArenaMap::new();
            let mut addrs: Vec<u64> = Vec::new();
            for (kind, pick, len) in ops {
                if kind == 0 || addrs.is_empty() {
                    let (addr, _) = map.reserve(len + HEADER_BYTES, len as u64);
                    addrs.push(addr);
                } else if kind == 1 {
                    let idx = pick as usize % addrs.len();
                    let addr = addrs.swap_remove(idx);
                    prop_assert!(map.release(addr).is_some());
                }
                // Walk the live set in address order: each object's
                // slot extent must end before the next begins.
                let mut prev_end = 0u64;
                for (addr, obj) in map.live_objects() {
                    prop_assert!(
                        addr >= prev_end,
                        "object at {addr} overlaps previous extent ending {prev_end}"
                    );
                    prev_end = addr + obj.kind.capacity();
                }
            }
            Ok(())
        })
        .unwrap();
}

/// Determinism: replaying the same op sequence on a fresh arena yields
/// identical addresses and an identical structural digest — free lists
/// and the run map have no hidden nondeterminism.
#[test]
fn prop_free_then_alloc_reuse_is_deterministic() {
    let mut runner =
        proptest::test_runner::TestRunner::new(proptest::test_runner::Config::with_cases(64));
    runner
        .run(&ops_strategy(), |ops| {
            let run = |ops: &[(u8, u16, usize)]| {
                let mut map = ArenaMap::new();
                let mut addrs: Vec<u64> = Vec::new();
                let mut trace: Vec<u64> = Vec::new();
                for &(kind, pick, len) in ops {
                    if kind == 0 || addrs.is_empty() {
                        let (addr, _) = map.reserve(len + HEADER_BYTES, len as u64);
                        addrs.push(addr);
                        trace.push(addr);
                    } else if kind == 1 {
                        let idx = pick as usize % addrs.len();
                        map.release(addrs.swap_remove(idx));
                    }
                }
                (trace, map.digest())
            };
            let (trace_a, digest_a) = run(&ops);
            let (trace_b, digest_b) = run(&ops);
            prop_assert_eq!(trace_a, trace_b, "address streams diverged");
            prop_assert_eq!(digest_a, digest_b, "structural digests diverged");
            Ok(())
        })
        .unwrap();
}

/// End-to-end byte-exactness and accounting exactness through the
/// cluster, at both granularities, against a model map.
#[test]
fn prop_roundtrips_and_accounting_exact_both_granularities() {
    for granularity in [Granularity::Object, Granularity::Page] {
        let mut runner =
            proptest::test_runner::TestRunner::new(proptest::test_runner::Config::with_cases(10));
        runner
            .run(&ops_strategy(), |ops| {
                let (dm, server) = cluster();
                let mut heap =
                    ObjectHeap::new(Arc::clone(&dm), server, HeapConfig::new(granularity));
                let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
                let mut tag = 0u64;
                for (kind, pick, len) in ops {
                    tag += 1;
                    let keys: Vec<u64> = model.keys().copied().collect();
                    match kind {
                        0 => {
                            let data = payload(tag, len);
                            let addr = heap.alloc(&data).unwrap();
                            prop_assert!(
                                model.insert(addr, data).is_none(),
                                "allocator handed out a live address"
                            );
                        }
                        1 if !keys.is_empty() => {
                            let addr = keys[pick as usize % keys.len()];
                            heap.free(addr).unwrap();
                            model.remove(&addr);
                        }
                        2 if !keys.is_empty() => {
                            let addr = keys[pick as usize % keys.len()];
                            // Shrink-or-equal keeps the slot valid.
                            let cur = model[&addr].len().max(1);
                            let new_len = 1 + (len % cur);
                            let data = payload(tag ^ 0xdead, new_len);
                            heap.update(addr, &data).unwrap();
                            model.insert(addr, data);
                        }
                        3 if !keys.is_empty() => {
                            let addr = keys[pick as usize % keys.len()];
                            prop_assert_eq!(&heap.get(addr).unwrap(), &model[&addr]);
                        }
                        _ => {}
                    }
                    // Accounting exactness after every op.
                    let stats = heap.stats();
                    prop_assert_eq!(stats.live_objects, model.len());
                    let model_bytes: u64 = model.values().map(|v| v.len() as u64).sum();
                    prop_assert_eq!(stats.live_bytes, model_bytes);
                    prop_assert!(stats.slot_bytes >= stats.live_bytes);
                    prop_assert!(stats.reserved_bytes >= stats.slot_bytes);
                }
                // Closing audit: every live object reads back byte-exact
                // (batched verb in object mode, page walks otherwise).
                let addrs: Vec<u64> = model.keys().copied().collect();
                let got = heap.get_many(&addrs).unwrap();
                for (addr, bytes) in addrs.iter().zip(got) {
                    prop_assert_eq!(&bytes, &model[addr]);
                }
                Ok(())
            })
            .unwrap();
    }
}

/// Fault story: a heap rebuilt purely from the backing store (recovery
/// scan over the cluster's entries) has the same structural metadata
/// digest and serves every object byte-exactly.
#[test]
fn prop_reconstruct_matches_digest_and_bytes() {
    let mut runner =
        proptest::test_runner::TestRunner::new(proptest::test_runner::Config::with_cases(10));
    runner
        .run(&ops_strategy(), |ops| {
            let (dm, server) = cluster();
            let config = HeapConfig::new(Granularity::Object);
            let mut heap = ObjectHeap::new(Arc::clone(&dm), server, config.clone());
            let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
            let mut tag = 0u64;
            for (kind, pick, len) in ops {
                tag += 1;
                let keys: Vec<u64> = model.keys().copied().collect();
                match kind {
                    0 => {
                        let data = payload(tag, len);
                        let addr = heap.alloc(&data).unwrap();
                        model.insert(addr, data);
                    }
                    1 if !keys.is_empty() => {
                        let addr = keys[pick as usize % keys.len()];
                        heap.free(addr).unwrap();
                        model.remove(&addr);
                    }
                    _ => {}
                }
            }
            let mut rebuilt =
                ObjectHeap::reconstruct(Arc::clone(&dm), server, config.clone()).unwrap();
            prop_assert_eq!(rebuilt.metadata_digest(), heap.metadata_digest());
            for (addr, data) in &model {
                prop_assert_eq!(&rebuilt.get(*addr).unwrap(), data);
            }
            // The rebuilt heap keeps allocating without trampling the
            // survivors.
            let extra = payload(0xfeed, 100);
            let addr = rebuilt.alloc(&extra).unwrap();
            prop_assert!(!model.contains_key(&addr));
            prop_assert_eq!(rebuilt.get(addr).unwrap(), extra);
            Ok(())
        })
        .unwrap();
}
