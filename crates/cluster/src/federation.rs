//! Two-tier hierarchical group sharing (paper §IV-C).
//!
//! "One way to extend the flat structure of the group based sharing model
//! is to introduce two or more tiers of hierarchical grouping algorithms.
//! Each group in each tier will elect a group leader … Also, a leader can
//! request dynamic re-grouping when its group experiences shortage of
//! disaggregated memory."
//!
//! [`Federation`] implements that second tier: group leaders form a
//! super-group; a starved group's leader consults it to **lease** idle
//! nodes from the sibling group with the most free memory (bounded, with
//! an expiry), and may fall back to **merging** groups when leases cannot
//! cover a sustained shortage. Memory maps stay bounded: a member only
//! ever tracks its own group plus currently leased nodes.

use crate::election::LeaderElection;
use crate::group::GroupTable;
use crate::membership::ClusterMembership;
use dmem_sim::{SimClock, SimDuration, SimInstant};
use dmem_types::{ByteSize, DmemError, DmemResult, GroupId, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// An active cross-group lease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The borrowing (starved) group.
    pub borrower: GroupId,
    /// The donating group.
    pub donor: GroupId,
    /// Donor nodes the borrower may place entries on.
    pub nodes: Vec<NodeId>,
    /// When the lease lapses.
    pub expires_at: SimInstant,
}

/// The tier-2 coordinator over a [`GroupTable`].
pub struct Federation {
    membership: ClusterMembership,
    clock: SimClock,
    groups: Mutex<GroupTable>,
    election: LeaderElection,
    leases: Mutex<HashMap<GroupId, Lease>>,
    lease_duration: SimDuration,
    max_leased_nodes: usize,
}

impl Federation {
    /// Creates a federation over an initial grouping.
    pub fn new(
        membership: ClusterMembership,
        clock: SimClock,
        groups: GroupTable,
        election: LeaderElection,
        lease_duration: SimDuration,
        max_leased_nodes: usize,
    ) -> Self {
        Federation {
            membership,
            clock,
            groups: Mutex::new(groups),
            election,
            leases: Mutex::new(HashMap::new()),
            lease_duration,
            max_leased_nodes: max_leased_nodes.max(1),
        }
    }

    /// Aggregate advertised free memory of a group's alive members.
    pub fn group_free(&self, group: GroupId) -> ByteSize {
        let groups = self.groups.lock();
        groups
            .members(group)
            .iter()
            .filter(|&&n| self.membership.is_alive(n))
            .map(|&n| self.membership.free_of(n))
            .sum()
    }

    /// The group currently containing `node`.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::NodeUnavailable`] for unknown nodes.
    pub fn group_of(&self, node: NodeId) -> DmemResult<GroupId> {
        self.groups.lock().group_of(node)
    }

    /// Remote-placement candidates for `node`: alive group peers plus any
    /// currently leased donor nodes.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::NodeUnavailable`] for unknown nodes.
    pub fn candidates_for(&self, node: NodeId) -> DmemResult<Vec<NodeId>> {
        let group = self.group_of(node)?;
        self.expire_leases();
        let mut candidates: Vec<NodeId> = {
            let groups = self.groups.lock();
            groups
                .peers(node)?
                .into_iter()
                .filter(|&n| self.membership.is_alive(n))
                .collect()
        };
        if let Some(lease) = self.leases.lock().get(&group) {
            let leased: Vec<NodeId> = lease
                .nodes
                .iter()
                .copied()
                .filter(|&n| self.membership.is_alive(n) && !candidates.contains(&n))
                .collect();
            candidates.extend(leased);
        }
        Ok(candidates)
    }

    fn expire_leases(&self) {
        let now = self.clock.now();
        self.leases.lock().retain(|_, lease| lease.expires_at > now);
    }

    /// Tier-2 consultation: if `group`'s free memory is below `threshold`,
    /// lease nodes from the sibling group with the most free memory.
    /// Returns the active lease (new or existing), or `None` when the
    /// group is healthy.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::CapacityExhausted`] when no sibling group can
    /// donate (the caller may then fall back to [`Federation::merge_into`]).
    pub fn check_pressure(&self, group: GroupId, threshold: ByteSize) -> DmemResult<Option<Lease>> {
        self.expire_leases();
        if self.group_free(group) >= threshold {
            return Ok(None);
        }
        if let Some(existing) = self.leases.lock().get(&group) {
            return Ok(Some(existing.clone()));
        }
        // Consult the super-group: pick the donor group with most free
        // memory (its leader answers for it; leaders must be electable).
        let group_ids = self.groups.lock().group_ids();
        let donor = group_ids
            .into_iter()
            .filter(|&g| g != group)
            .filter(|&g| {
                let groups = self.groups.lock();
                self.election.leader(&groups, g).is_ok()
            })
            .max_by_key(|&g| self.group_free(g))
            .ok_or(DmemError::CapacityExhausted {
                pool: "no donor group".into(),
            })?;
        if self.group_free(donor) <= threshold {
            return Err(DmemError::CapacityExhausted {
                pool: format!("donor {donor} has no spare capacity"),
            });
        }
        // Lease the donor's freest nodes.
        let mut donors: Vec<NodeId> = {
            let groups = self.groups.lock();
            groups
                .members(donor)
                .iter()
                .copied()
                .filter(|&n| self.membership.is_alive(n))
                .collect()
        };
        donors.sort_by_key(|&n| std::cmp::Reverse(self.membership.free_of(n)));
        donors.truncate(self.max_leased_nodes);
        let lease = Lease {
            borrower: group,
            donor,
            nodes: donors,
            expires_at: self.clock.now() + self.lease_duration,
        };
        self.leases.lock().insert(group, lease.clone());
        Ok(Some(lease))
    }

    /// Dynamic re-grouping: permanently merges `starved` into `donor`
    /// (the escalation beyond leases). Active leases of the merged groups
    /// are dropped.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupTable::merge`] errors.
    pub fn merge_into(&self, starved: GroupId, donor: GroupId) -> DmemResult<GroupId> {
        let merged = self.groups.lock().merge(starved, donor)?;
        let mut leases = self.leases.lock();
        leases.remove(&starved);
        leases.remove(&donor);
        Ok(merged)
    }

    /// Number of active leases.
    pub fn active_leases(&self) -> usize {
        self.expire_leases();
        self.leases.lock().len()
    }

    /// Current group count.
    pub fn group_count(&self) -> usize {
        self.groups.lock().group_count()
    }
}

impl fmt::Debug for Federation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Federation")
            .field("groups", &self.group_count())
            .field("leases", &self.leases.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::{FailureEvent, FailureInjector};

    fn setup(nodes: u32, group_size: usize) -> (SimClock, FailureInjector, ClusterMembership, Federation) {
        let clock = SimClock::new();
        let failures = FailureInjector::new(clock.clone());
        let ids: Vec<NodeId> = (0..nodes).map(NodeId::new).collect();
        let membership = ClusterMembership::new(ids.clone(), failures.clone());
        let groups = GroupTable::partition(&ids, group_size).unwrap();
        let election = LeaderElection::new(
            membership.clone(),
            clock.clone(),
            SimDuration::from_millis(50),
        );
        let federation = Federation::new(
            membership.clone(),
            clock.clone(),
            groups,
            election,
            SimDuration::from_millis(100),
            2,
        );
        (clock, failures, membership, federation)
    }

    fn advertise_group(m: &ClusterMembership, nodes: std::ops::Range<u32>, mib: u64) {
        for n in nodes {
            m.advertise_free(NodeId::new(n), ByteSize::from_mib(mib));
        }
    }

    #[test]
    fn healthy_group_gets_no_lease() {
        let (_, _, m, fed) = setup(8, 4);
        advertise_group(&m, 0..4, 10);
        let lease = fed
            .check_pressure(GroupId::new(0), ByteSize::from_mib(8))
            .unwrap();
        assert!(lease.is_none());
        assert_eq!(fed.active_leases(), 0);
    }

    #[test]
    fn starved_group_leases_from_richest_sibling() {
        let (_, _, m, fed) = setup(12, 4);
        advertise_group(&m, 0..4, 0); // group 0: starved
        advertise_group(&m, 4..8, 5); // group 1: modest
        advertise_group(&m, 8..12, 50); // group 2: rich
        let lease = fed
            .check_pressure(GroupId::new(0), ByteSize::from_mib(1))
            .unwrap()
            .expect("lease granted");
        assert_eq!(lease.donor, GroupId::new(2));
        assert_eq!(lease.nodes.len(), 2, "bounded by max_leased_nodes");
        assert!(lease.nodes.iter().all(|n| (8..12).contains(&n.index())));
        // Candidates now include the leased nodes.
        let candidates = fed.candidates_for(NodeId::new(0)).unwrap();
        for n in &lease.nodes {
            assert!(candidates.contains(n));
        }
        assert_eq!(fed.active_leases(), 1);
    }

    #[test]
    fn lease_is_reused_while_active() {
        let (_, _, m, fed) = setup(8, 4);
        advertise_group(&m, 0..4, 0);
        advertise_group(&m, 4..8, 50);
        let a = fed
            .check_pressure(GroupId::new(0), ByteSize::from_mib(1))
            .unwrap()
            .unwrap();
        let b = fed
            .check_pressure(GroupId::new(0), ByteSize::from_mib(1))
            .unwrap()
            .unwrap();
        assert_eq!(a, b, "no duplicate lease while one is active");
    }

    #[test]
    fn leases_expire_on_the_clock() {
        let (clock, _, m, fed) = setup(8, 4);
        advertise_group(&m, 0..4, 0);
        advertise_group(&m, 4..8, 50);
        fed.check_pressure(GroupId::new(0), ByteSize::from_mib(1))
            .unwrap()
            .unwrap();
        assert_eq!(fed.active_leases(), 1);
        clock.advance(SimDuration::from_millis(150));
        assert_eq!(fed.active_leases(), 0);
        let candidates = fed.candidates_for(NodeId::new(0)).unwrap();
        assert!(candidates.iter().all(|n| n.index() < 4), "lease gone");
    }

    #[test]
    fn no_donor_capacity_is_an_error() {
        let (_, _, m, fed) = setup(8, 4);
        advertise_group(&m, 0..8, 0); // everyone broke
        assert!(matches!(
            fed.check_pressure(GroupId::new(0), ByteSize::from_mib(1)),
            Err(DmemError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn dead_donor_group_is_skipped() {
        let (_, failures, m, fed) = setup(12, 4);
        advertise_group(&m, 0..4, 0);
        advertise_group(&m, 4..8, 5);
        advertise_group(&m, 8..12, 50);
        // The rich group dies entirely.
        for n in 8..12 {
            failures.inject_now(FailureEvent::NodeDown(NodeId::new(n)));
        }
        let lease = fed
            .check_pressure(GroupId::new(0), ByteSize::from_mib(1))
            .unwrap()
            .expect("falls back to the modest group");
        assert_eq!(lease.donor, GroupId::new(1));
    }

    #[test]
    fn merge_escalation() {
        let (_, _, m, fed) = setup(8, 4);
        advertise_group(&m, 0..8, 0);
        assert_eq!(fed.group_count(), 2);
        let merged = fed.merge_into(GroupId::new(0), GroupId::new(1)).unwrap();
        assert_eq!(fed.group_count(), 1);
        // All seven other nodes are now peers.
        let candidates = fed.candidates_for(NodeId::new(0)).unwrap();
        assert_eq!(candidates.len(), 7);
        assert_eq!(fed.group_of(NodeId::new(7)).unwrap(), merged);
    }
}
