//! Cluster membership and free-memory advertisement.

use dmem_sim::FailureInjector;
use dmem_types::{ByteSize, NodeId};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// The set of nodes participating in the disaggregated memory system,
/// their liveness (via the failure injector) and their advertised free
/// remote memory.
///
/// Cheap to clone; clones share state.
#[derive(Clone)]
pub struct ClusterMembership {
    nodes: Arc<Vec<NodeId>>,
    failures: FailureInjector,
    free: Arc<RwLock<HashMap<NodeId, ByteSize>>>,
    /// Nodes a failed read had to fail over past: candidates for the
    /// repair path to probe, repair around, or evict. Populated only
    /// under fault injection, so fault-free runs never touch it.
    suspects: Arc<RwLock<BTreeSet<NodeId>>>,
}

impl ClusterMembership {
    /// Creates a membership over `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or contains duplicates.
    pub fn new(nodes: Vec<NodeId>, failures: FailureInjector) -> Self {
        assert!(!nodes.is_empty(), "cluster must have at least one node");
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), nodes.len(), "duplicate node ids");
        ClusterMembership {
            nodes: Arc::new(nodes),
            failures,
            free: Arc::new(RwLock::new(HashMap::new())),
            suspects: Arc::new(RwLock::new(BTreeSet::new())),
        }
    }

    /// Marks `node` suspect after a read had to fail over past it.
    /// Returns `true` if it was not already suspect.
    pub fn mark_suspect(&self, node: NodeId) -> bool {
        self.suspects.write().insert(node)
    }

    /// Clears a suspicion (the repair path probed the node healthy, or
    /// repaired its data elsewhere and evicted it from replica sets).
    /// Returns `true` if the node was suspect.
    pub fn clear_suspect(&self, node: NodeId) -> bool {
        self.suspects.write().remove(&node)
    }

    /// Whether `node` is currently suspect.
    pub fn is_suspect(&self, node: NodeId) -> bool {
        self.suspects.read().contains(&node)
    }

    /// All currently suspect nodes, sorted.
    pub fn suspects(&self) -> Vec<NodeId> {
        self.suspects.read().iter().copied().collect()
    }

    /// All configured nodes (alive or not), in configuration order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Nodes currently alive.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| self.failures.is_node_up(n))
            .collect()
    }

    /// `true` if the node is configured and alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.contains(&node) && self.failures.is_node_up(node)
    }

    /// Publishes `node`'s free remote-memory capacity (done periodically
    /// by each node's agent in the paper; here by the remote store).
    pub fn advertise_free(&self, node: NodeId, free: ByteSize) {
        self.free.write().insert(node, free);
    }

    /// Last advertised free capacity of `node` (zero if never advertised).
    pub fn free_of(&self, node: NodeId) -> ByteSize {
        self.free
            .read()
            .get(&node)
            .copied()
            .unwrap_or(ByteSize::ZERO)
    }

    /// Alive nodes other than `exclude`, the candidate set for remote
    /// placement (a node does not park entries on itself).
    pub fn candidates(&self, exclude: NodeId) -> Vec<NodeId> {
        self.alive_nodes()
            .into_iter()
            .filter(|&n| n != exclude)
            .collect()
    }

    /// The failure injector backing liveness.
    pub fn failures(&self) -> &FailureInjector {
        &self.failures
    }
}

impl fmt::Debug for ClusterMembership {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterMembership")
            .field("nodes", &self.nodes.len())
            .field("alive", &self.alive_nodes().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::{FailureEvent, SimClock};

    fn membership(n: u32) -> (FailureInjector, ClusterMembership) {
        let failures = FailureInjector::new(SimClock::new());
        let nodes = (0..n).map(NodeId::new).collect();
        let m = ClusterMembership::new(nodes, failures.clone());
        (failures, m)
    }

    #[test]
    fn all_alive_initially() {
        let (_, m) = membership(4);
        assert_eq!(m.alive_nodes().len(), 4);
        assert!(m.is_alive(NodeId::new(3)));
        assert!(!m.is_alive(NodeId::new(99)), "unconfigured node is not a member");
    }

    #[test]
    fn failures_reflected() {
        let (failures, m) = membership(4);
        failures.inject_now(FailureEvent::NodeDown(NodeId::new(1)));
        assert_eq!(m.alive_nodes().len(), 3);
        assert!(!m.is_alive(NodeId::new(1)));
    }

    #[test]
    fn candidates_exclude_self_and_dead() {
        let (failures, m) = membership(4);
        failures.inject_now(FailureEvent::NodeDown(NodeId::new(2)));
        let c = m.candidates(NodeId::new(0));
        assert_eq!(c, vec![NodeId::new(1), NodeId::new(3)]);
    }

    #[test]
    fn free_memory_advertisement() {
        let (_, m) = membership(2);
        assert_eq!(m.free_of(NodeId::new(0)), ByteSize::ZERO);
        m.advertise_free(NodeId::new(0), ByteSize::from_mib(5));
        assert_eq!(m.free_of(NodeId::new(0)), ByteSize::from_mib(5));
    }

    #[test]
    fn suspects_are_shared_sorted_and_idempotent() {
        let (_, m) = membership(4);
        let peer = m.clone(); // clones share the suspect set
        assert!(m.mark_suspect(NodeId::new(2)));
        assert!(!m.mark_suspect(NodeId::new(2)), "second mark is a no-op");
        assert!(m.mark_suspect(NodeId::new(1)));
        assert!(peer.is_suspect(NodeId::new(2)));
        assert_eq!(peer.suspects(), vec![NodeId::new(1), NodeId::new(2)]);
        assert!(peer.clear_suspect(NodeId::new(1)));
        assert!(!peer.clear_suspect(NodeId::new(1)));
        assert_eq!(m.suspects(), vec![NodeId::new(2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate node ids")]
    fn duplicates_rejected() {
        let failures = FailureInjector::new(SimClock::new());
        let _ = ClusterMembership::new(vec![NodeId::new(0), NodeId::new(0)], failures);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_rejected() {
        let failures = FailureInjector::new(SimClock::new());
        let _ = ClusterMembership::new(vec![], failures);
    }
}
