//! Hierarchical group sharing (paper §IV-C).
//!
//! A flat cluster-wide disaggregated memory map does not scale: the paper
//! works the arithmetic — 8 bytes of location metadata per 4 KiB entry
//! means 5 GB of map per node for 2 TB of cluster memory, 25 GB for 10 TB.
//! The remedy is to partition nodes into groups of similar size; nodes
//! share disaggregated memory only within their group, bounding each map
//! to the group's memory. [`map_overhead_bytes`] reproduces the
//! arithmetic; [`GroupTable`] implements the partitioning plus dynamic
//! re-grouping.

use dmem_types::{ByteSize, DmemError, DmemResult, GroupId, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Metadata bytes a node must hold to track `disaggregated` bytes of
/// shareable memory at `entry_size` granularity with `bytes_per_entry` of
/// location metadata.
///
/// # Examples
///
/// Reproducing §IV-C's arithmetic — 2 TB of cluster memory in 4 KiB
/// entries at 8 B of metadata each costs ~4 GiB (the paper rounds to
/// "5 GB"):
///
/// ```
/// use dmem_cluster::map_overhead_bytes;
/// use dmem_types::ByteSize;
///
/// let map = map_overhead_bytes(ByteSize::from_gib(2048), 4096, 8);
/// assert_eq!(map, ByteSize::from_gib(4));
/// ```
pub fn map_overhead_bytes(
    disaggregated: ByteSize,
    entry_size: usize,
    bytes_per_entry: u64,
) -> ByteSize {
    ByteSize::new(disaggregated.pages(entry_size) * bytes_per_entry)
}

/// A partition of the cluster's nodes into sharing groups.
#[derive(Debug, Clone)]
pub struct GroupTable {
    groups: HashMap<GroupId, Vec<NodeId>>,
    node_to_group: HashMap<NodeId, GroupId>,
    target_size: usize,
}

impl GroupTable {
    /// Partitions `nodes` into contiguous groups of `target_size` (the
    /// last group may be smaller, but never less than half the target when
    /// it can instead be merged into its predecessor — "groups of similar
    /// number of nodes").
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] if `target_size` is zero or
    /// `nodes` is empty.
    pub fn partition(nodes: &[NodeId], target_size: usize) -> DmemResult<Self> {
        if target_size == 0 {
            return Err(DmemError::InvalidConfig {
                reason: "group size must be at least 1".into(),
            });
        }
        if nodes.is_empty() {
            return Err(DmemError::InvalidConfig {
                reason: "cannot group an empty node set".into(),
            });
        }
        let mut groups: HashMap<GroupId, Vec<NodeId>> = HashMap::new();
        let mut node_to_group = HashMap::new();
        let mut chunks: Vec<Vec<NodeId>> =
            nodes.chunks(target_size).map(|c| c.to_vec()).collect();
        // Merge an undersized trailing group into its predecessor.
        if chunks.len() >= 2 {
            let last_len = chunks.last().expect("nonempty").len();
            if last_len * 2 < target_size {
                let tail = chunks.pop().expect("nonempty");
                chunks.last_mut().expect("nonempty").extend(tail);
            }
        }
        for (i, members) in chunks.into_iter().enumerate() {
            let gid = GroupId::new(i as u32);
            for &n in &members {
                node_to_group.insert(n, gid);
            }
            groups.insert(gid, members);
        }
        Ok(GroupTable {
            groups,
            node_to_group,
            target_size,
        })
    }

    /// The group containing `node`.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::NodeUnavailable`] for unknown nodes.
    pub fn group_of(&self, node: NodeId) -> DmemResult<GroupId> {
        self.node_to_group
            .get(&node)
            .copied()
            .ok_or(DmemError::NodeUnavailable(node))
    }

    /// Members of `group`, in partition order; empty for unknown groups.
    pub fn members(&self, group: GroupId) -> &[NodeId] {
        self.groups.get(&group).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Peers of `node`: the other members of its group. Nodes outside the
    /// group cannot share this node's disaggregated memory directly.
    pub fn peers(&self, node: NodeId) -> DmemResult<Vec<NodeId>> {
        let gid = self.group_of(node)?;
        Ok(self
            .members(gid)
            .iter()
            .copied()
            .filter(|&n| n != node)
            .collect())
    }

    /// All group ids, ascending.
    pub fn group_ids(&self) -> Vec<GroupId> {
        let mut ids: Vec<GroupId> = self.groups.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Dynamic re-grouping (§IV-C: "a leader can request dynamic
    /// re-grouping when its group experiences shortage"): merges `starved`
    /// with `donor` into one group. Returns the id of the merged group
    /// (the smaller id survives).
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] if the groups are unknown or
    /// identical.
    pub fn merge(&mut self, starved: GroupId, donor: GroupId) -> DmemResult<GroupId> {
        if starved == donor
            || !self.groups.contains_key(&starved)
            || !self.groups.contains_key(&donor)
        {
            return Err(DmemError::InvalidConfig {
                reason: format!("cannot merge {starved} with {donor}"),
            });
        }
        let (keep, fold) = if starved < donor {
            (starved, donor)
        } else {
            (donor, starved)
        };
        let folded = self.groups.remove(&fold).expect("checked above");
        for &n in &folded {
            self.node_to_group.insert(n, keep);
        }
        self.groups.get_mut(&keep).expect("checked above").extend(folded);
        Ok(keep)
    }

    /// Worst-case per-node memory-map overhead under this grouping,
    /// assuming every node contributes `per_node_memory` of shareable
    /// disaggregated memory tracked at 4 KiB granularity with 8-byte
    /// metadata (the §IV-C model).
    pub fn per_node_map_overhead(&self, per_node_memory: ByteSize) -> ByteSize {
        let largest = self
            .groups
            .values()
            .map(Vec::len)
            .max()
            .unwrap_or(0) as u64;
        map_overhead_bytes(per_node_memory * largest, 4096, 8)
    }
}

impl fmt::Display for GroupTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} groups (target size {})",
            self.group_count(),
            self.target_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn partitions_evenly() {
        let table = GroupTable::partition(&nodes(32), 8).unwrap();
        assert_eq!(table.group_count(), 4);
        for gid in table.group_ids() {
            assert_eq!(table.members(gid).len(), 8);
        }
    }

    #[test]
    fn small_tail_merges() {
        // 9 nodes at target 8: tail of 1 is < 8/2, merges -> one group of 9.
        let table = GroupTable::partition(&nodes(9), 8).unwrap();
        assert_eq!(table.group_count(), 1);
        assert_eq!(table.members(GroupId::new(0)).len(), 9);
        // 12 nodes at target 8: tail of 4 >= 8/2, stays separate.
        let table = GroupTable::partition(&nodes(12), 8).unwrap();
        assert_eq!(table.group_count(), 2);
    }

    #[test]
    fn peers_are_group_local() {
        let table = GroupTable::partition(&nodes(8), 4).unwrap();
        let peers = table.peers(NodeId::new(1)).unwrap();
        assert_eq!(peers, vec![NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
        // Node 5 is in the other group.
        assert!(!peers.contains(&NodeId::new(5)));
    }

    #[test]
    fn unknown_node_errors() {
        let table = GroupTable::partition(&nodes(4), 2).unwrap();
        assert!(table.group_of(NodeId::new(77)).is_err());
        assert!(table.peers(NodeId::new(77)).is_err());
    }

    #[test]
    fn merge_combines_groups() {
        let mut table = GroupTable::partition(&nodes(8), 4).unwrap();
        let merged = table
            .merge(GroupId::new(1), GroupId::new(0))
            .unwrap();
        assert_eq!(merged, GroupId::new(0));
        assert_eq!(table.group_count(), 1);
        assert_eq!(table.members(merged).len(), 8);
        assert_eq!(table.group_of(NodeId::new(7)).unwrap(), merged);
        assert!(table.merge(merged, merged).is_err());
    }

    #[test]
    fn paper_map_arithmetic() {
        // §IV-C: 2 TB cluster memory, 4 KiB entries, 8 B metadata -> "5 GB"
        // (exactly 4 GiB); 10 TB -> "25 GB" (exactly 20 GiB).
        assert_eq!(
            map_overhead_bytes(ByteSize::from_gib(2 * 1024), 4096, 8),
            ByteSize::from_gib(4)
        );
        assert_eq!(
            map_overhead_bytes(ByteSize::from_gib(10 * 1024), 4096, 8),
            ByteSize::from_gib(20)
        );
    }

    #[test]
    fn grouping_caps_map_overhead() {
        // The §IV-C scalability argument: grouping 32 nodes of 64 GiB into
        // groups of 8 divides each node's map overhead by 4.
        let flat = GroupTable::partition(&nodes(32), 32).unwrap();
        let grouped = GroupTable::partition(&nodes(32), 8).unwrap();
        let per_node = ByteSize::from_gib(64);
        let flat_map = flat.per_node_map_overhead(per_node);
        let grouped_map = grouped.per_node_map_overhead(per_node);
        assert_eq!(flat_map / grouped_map, 4);
    }

    proptest! {
        #[test]
        fn prop_partition_covers_all_nodes(n in 1u32..100, size in 1usize..20) {
            let ns = nodes(n);
            let table = GroupTable::partition(&ns, size).unwrap();
            let mut covered: Vec<NodeId> = table
                .group_ids()
                .into_iter()
                .flat_map(|g| table.members(g).to_vec())
                .collect();
            covered.sort_unstable();
            prop_assert_eq!(covered, ns.clone());
            for node in ns {
                let gid = table.group_of(node).unwrap();
                prop_assert!(table.members(gid).contains(&node));
            }
        }

        #[test]
        fn prop_groups_of_similar_size(n in 2u32..100, size in 2usize..16) {
            let table = GroupTable::partition(&nodes(n), size).unwrap();
            for gid in table.group_ids() {
                let len = table.members(gid).len();
                prop_assert!(len >= size / 2 || table.group_count() == 1,
                    "group {gid} of {len} too small for target {size}");
                prop_assert!(len < size * 2, "group {gid} of {len} too large");
            }
        }
    }
}
