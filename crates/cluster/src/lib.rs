//! Cluster-level memory disaggregation (paper §IV-C through §IV-F).
//!
//! Remote idle memory is organized as per-node RDMA-registered receive
//! buffer pools; client nodes park data entries there through the RDMC →
//! RDMS path. This crate supplies every coordination mechanism the paper
//! calls for:
//!
//! * [`membership`] — node liveness and free-memory advertisement;
//! * [`group`] — hierarchical group sharing, including the memory-map
//!   metadata arithmetic of §IV-C;
//! * [`election`] — leader election by maximum available memory with
//!   handshake-timeout re-election;
//! * [`placement`] — random / round-robin / weighted round-robin /
//!   power-of-two-choices replica placement (§IV-E);
//! * [`remote`] — the remote memory store: per-node registered regions,
//!   size-class allocation, RDMA data path (RDMC/RDMS);
//! * [`replication`] — triple-replica, all-or-nothing remote writes with
//!   read failover (§IV-D);
//! * [`eviction`] — the remote slab eviction handler of §IV-F.
//!
//! # Examples
//!
//! ```
//! use dmem_cluster::{ClusterMembership, Placer, RemoteStore};
//! use dmem_net::Fabric;
//! use dmem_sim::{CostModel, FailureInjector, SimClock};
//! use dmem_types::{ByteSize, EntryId, NodeId, PlacementStrategy, ServerId};
//!
//! let clock = SimClock::new();
//! let failures = FailureInjector::new(clock.clone());
//! let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures.clone());
//! let nodes: Vec<NodeId> = (0..4).map(NodeId::new).collect();
//! let membership = ClusterMembership::new(nodes.clone(), failures);
//! let store = RemoteStore::new(fabric, membership.clone(), ByteSize::from_mib(1))?;
//!
//! let owner = ServerId::new(nodes[0], 0);
//! let entry = EntryId::new(owner, 1);
//! store.store(nodes[0], nodes[1], entry, b"parked page".to_vec())?;
//! assert_eq!(store.load(nodes[0], nodes[1], entry)?, b"parked page".to_vec());
//! # Ok::<(), dmem_types::DmemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod election;
pub mod eviction;
pub mod federation;
pub mod group;
pub mod membership;
pub mod placement;
pub mod remote;
pub mod replication;

pub use election::LeaderElection;
pub use eviction::{EvictionOutcome, PriorityResolver, RemoteSlabEvictor};
pub use federation::{Federation, Lease};
pub use group::{map_overhead_bytes, GroupTable};
pub use membership::ClusterMembership;
pub use placement::{spread_replicas, Placer};
pub use remote::{RemoteStore, RemoteStoreStats};
pub use replication::{ReplicaSet, Replicator};
