//! Leader election (paper §IV-C).
//!
//! Each group periodically elects the member that "meets certain
//! constraints … such as the one with the maximum available memory". The
//! leader answers placement consultations; if its handshake times out, a
//! new election is triggered.

use crate::group::GroupTable;
use crate::membership::ClusterMembership;
use dmem_sim::{SimClock, SimDuration, SimInstant};
use dmem_types::{DmemError, DmemResult, GroupId, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

#[derive(Debug, Clone, Copy)]
struct LeaderState {
    leader: NodeId,
    last_heartbeat: SimInstant,
}

/// Per-group leader election with heartbeat timeouts.
pub struct LeaderElection {
    membership: ClusterMembership,
    clock: SimClock,
    timeout: SimDuration,
    leaders: Mutex<HashMap<GroupId, LeaderState>>,
    elections_run: Mutex<u64>,
}

impl LeaderElection {
    /// Creates an election service whose leaders expire after `timeout`
    /// without a heartbeat.
    pub fn new(membership: ClusterMembership, clock: SimClock, timeout: SimDuration) -> Self {
        LeaderElection {
            membership,
            clock,
            timeout,
            leaders: Mutex::new(HashMap::new()),
            elections_run: Mutex::new(0),
        }
    }

    /// The current leader of `group`, electing one if none exists, the
    /// incumbent died, or its heartbeat timed out.
    ///
    /// The election picks the alive group member advertising the most
    /// free memory (ties broken by lowest node id, for determinism).
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::NoLeader`] when every member is down.
    pub fn leader(&self, groups: &GroupTable, group: GroupId) -> DmemResult<NodeId> {
        let now = self.clock.now();
        let mut leaders = self.leaders.lock();
        if let Some(state) = leaders.get(&group) {
            let expired = now - state.last_heartbeat > self.timeout;
            if !expired && self.membership.is_alive(state.leader) {
                return Ok(state.leader);
            }
        }
        // (Re-)elect: maximum advertised free memory among alive members.
        let winner = groups
            .members(group)
            .iter()
            .copied()
            .filter(|&n| self.membership.is_alive(n))
            .max_by_key(|&n| (self.membership.free_of(n), std::cmp::Reverse(n)))
            .ok_or(DmemError::NoLeader)?;
        leaders.insert(
            group,
            LeaderState {
                leader: winner,
                last_heartbeat: now,
            },
        );
        *self.elections_run.lock() += 1;
        Ok(winner)
    }

    /// Records a successful handshake with the group's leader, extending
    /// its term.
    pub fn heartbeat(&self, group: GroupId) {
        let now = self.clock.now();
        if let Some(state) = self.leaders.lock().get_mut(&group) {
            state.last_heartbeat = now;
        }
    }

    /// Total elections run (first elections and re-elections).
    pub fn elections_run(&self) -> u64 {
        *self.elections_run.lock()
    }

    /// The configured heartbeat timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

impl fmt::Debug for LeaderElection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LeaderElection")
            .field("timeout", &self.timeout)
            .field("elections_run", &self.elections_run())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::{FailureEvent, FailureInjector};
    use dmem_types::ByteSize;

    fn setup(n: u32) -> (SimClock, FailureInjector, ClusterMembership, GroupTable, LeaderElection) {
        let clock = SimClock::new();
        let failures = FailureInjector::new(clock.clone());
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let membership = ClusterMembership::new(nodes.clone(), failures.clone());
        let groups = GroupTable::partition(&nodes, n as usize).unwrap();
        let election = LeaderElection::new(
            membership.clone(),
            clock.clone(),
            SimDuration::from_millis(10),
        );
        (clock, failures, membership, groups, election)
    }

    #[test]
    fn elects_max_free_memory() {
        let (_, _, membership, groups, election) = setup(4);
        membership.advertise_free(NodeId::new(2), ByteSize::from_mib(10));
        membership.advertise_free(NodeId::new(1), ByteSize::from_mib(5));
        let leader = election.leader(&groups, GroupId::new(0)).unwrap();
        assert_eq!(leader, NodeId::new(2));
        assert_eq!(election.elections_run(), 1);
    }

    #[test]
    fn leader_is_sticky_while_alive() {
        let (_, _, membership, groups, election) = setup(4);
        membership.advertise_free(NodeId::new(1), ByteSize::from_mib(10));
        let first = election.leader(&groups, GroupId::new(0)).unwrap();
        // A new node advertising more memory does not depose the leader
        // mid-term.
        membership.advertise_free(NodeId::new(3), ByteSize::from_mib(99));
        election.heartbeat(GroupId::new(0));
        assert_eq!(election.leader(&groups, GroupId::new(0)).unwrap(), first);
        assert_eq!(election.elections_run(), 1);
    }

    #[test]
    fn crash_triggers_reelection() {
        let (_, failures, membership, groups, election) = setup(4);
        membership.advertise_free(NodeId::new(0), ByteSize::from_mib(10));
        let first = election.leader(&groups, GroupId::new(0)).unwrap();
        assert_eq!(first, NodeId::new(0));
        failures.inject_now(FailureEvent::NodeDown(first));
        membership.advertise_free(NodeId::new(3), ByteSize::from_mib(8));
        let second = election.leader(&groups, GroupId::new(0)).unwrap();
        assert_eq!(second, NodeId::new(3));
        assert_eq!(election.elections_run(), 2);
    }

    #[test]
    fn heartbeat_timeout_triggers_reelection() {
        let (clock, _, membership, groups, election) = setup(4);
        membership.advertise_free(NodeId::new(0), ByteSize::from_mib(10));
        let _ = election.leader(&groups, GroupId::new(0)).unwrap();
        clock.advance(SimDuration::from_millis(11));
        // No heartbeat arrived inside the timeout: re-election happens
        // (the same node may win again, but an election is counted).
        let _ = election.leader(&groups, GroupId::new(0)).unwrap();
        assert_eq!(election.elections_run(), 2);
    }

    #[test]
    fn all_members_down_means_no_leader() {
        let (_, failures, _, groups, election) = setup(2);
        failures.inject_now(FailureEvent::NodeDown(NodeId::new(0)));
        failures.inject_now(FailureEvent::NodeDown(NodeId::new(1)));
        assert_eq!(
            election.leader(&groups, GroupId::new(0)),
            Err(DmemError::NoLeader)
        );
    }

    #[test]
    fn deterministic_tiebreak_by_lowest_id() {
        let (_, _, _, groups, election) = setup(4);
        // Nobody advertised: all free = 0; lowest id wins.
        assert_eq!(
            election.leader(&groups, GroupId::new(0)).unwrap(),
            NodeId::new(0)
        );
    }
}
