//! Triple-replica remote writes (paper §IV-D).
//!
//! "We can offer the same degree of fault tolerance by enforcing triple
//! replica modularity for all remote read and write operations. Finally,
//! each remote write or read operation is treated as an atomic
//! transaction, all or nothing." The [`Replicator`] implements exactly
//! that: a replicated store either lands on every chosen replica or on
//! none; reads fail over across replicas; a degraded set can be repaired
//! by re-replication.

use crate::membership::ClusterMembership;
use crate::placement::Placer;
use crate::remote::RemoteStore;
use dmem_types::{DmemError, DmemResult, EntryId, NodeId, ReplicationFactor};
use std::fmt;
use std::sync::Arc;

/// The nodes holding one entry's replicas; the first is the primary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSet {
    /// Replica hosts, primary first.
    pub nodes: Vec<NodeId>,
}

impl ReplicaSet {
    /// The primary replica host.
    pub fn primary(&self) -> NodeId {
        self.nodes[0]
    }

    /// Replication degree.
    pub fn degree(&self) -> usize {
        self.nodes.len()
    }
}

impl fmt::Display for ReplicaSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replicas[")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

/// Replicated store/load/delete over the [`RemoteStore`].
pub struct Replicator {
    store: Arc<RemoteStore>,
    placer: Placer,
    factor: ReplicationFactor,
}

impl Replicator {
    /// Creates a replicator writing `factor` copies placed by `placer`.
    pub fn new(store: Arc<RemoteStore>, placer: Placer, factor: ReplicationFactor) -> Self {
        Replicator {
            store,
            placer,
            factor,
        }
    }

    /// The configured replication factor.
    pub fn factor(&self) -> ReplicationFactor {
        self.factor
    }

    /// The membership used for candidate selection.
    fn membership(&self) -> &ClusterMembership {
        self.store.membership()
    }

    /// Stores `data` on `factor` distinct remote nodes chosen from
    /// `candidates` (or from all alive peers of `from` when `candidates`
    /// is `None`). All-or-nothing: if any replica write fails, every
    /// already-written replica is deleted and an error is returned.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::ReplicationFailed`] when the full degree could
    /// not be committed (after rollback), or placement errors when too few
    /// candidates exist.
    pub fn store_replicated(
        &self,
        from: NodeId,
        entry: EntryId,
        data: &[u8],
        candidates: Option<&[NodeId]>,
    ) -> DmemResult<ReplicaSet> {
        let default_candidates;
        let candidates = match candidates {
            Some(c) => c,
            None => {
                default_candidates = self.membership().candidates(from);
                &default_candidates
            }
        };
        // Try placer-preferred nodes first, falling back to the remaining
        // candidates when a host is full or unreachable (the node manager
        // "identif[ies] a subset of remote nodes that are candidates",
        // §IV-E); only when the whole candidate set cannot host the
        // required degree does the write roll back.
        let mut remaining: Vec<NodeId> = candidates.to_vec();
        let mut written: Vec<NodeId> = Vec::with_capacity(self.factor.get());
        while written.len() < self.factor.get() && !remaining.is_empty() {
            let node = self.placer.pick(&remaining, 1)?[0];
            remaining.retain(|&n| n != node);
            if self.store.store(from, node, entry, data.to_vec()).is_ok() {
                written.push(node);
            }
        }
        if written.len() < self.factor.get() {
            for &w in &written {
                let _ = self.store.delete(from, w, entry);
            }
            return Err(DmemError::ReplicationFailed {
                reached: written.len(),
                required: self.factor.get(),
            });
        }
        Ok(ReplicaSet { nodes: written })
    }

    /// Stores a whole window of entries on one freshly placed replica set,
    /// using one batched RDMA write per replica (§IV-H batching combined
    /// with §IV-D replication). All-or-nothing across the entire batch and
    /// every replica.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::ReplicationFailed`] after rollback when any
    /// replica write fails, or placement errors when too few candidates
    /// exist.
    pub fn store_batch_replicated(
        &self,
        from: NodeId,
        batch: &[(EntryId, Vec<u8>)],
        candidates: &[NodeId],
    ) -> DmemResult<ReplicaSet> {
        let mut remaining: Vec<NodeId> = candidates.to_vec();
        let mut written: Vec<NodeId> = Vec::with_capacity(self.factor.get());
        while written.len() < self.factor.get() && !remaining.is_empty() {
            let node = self.placer.pick(&remaining, 1)?[0];
            remaining.retain(|&n| n != node);
            if self.store.store_batch(from, node, batch.to_vec()).is_ok() {
                written.push(node);
            }
        }
        if written.len() < self.factor.get() {
            for &w in &written {
                for (entry, _) in batch {
                    let _ = self.store.delete(from, w, *entry);
                }
            }
            return Err(DmemError::ReplicationFailed {
                reached: written.len(),
                required: self.factor.get(),
            });
        }
        Ok(ReplicaSet { nodes: written })
    }

    /// Reads the entry from the replica set, failing over across
    /// replicas in order.
    ///
    /// Under fault injection a successful failover also marks every
    /// skipped replica that *failed to answer* (verb timeout, link down,
    /// node unreachable) *suspect* in the membership, handing it to the
    /// repair path to probe healthy, repair around, or evict. A replica
    /// that answers `EntryNotFound` is healthy — it responded, it just
    /// lost the copy (e.g. a restart) — so it is skipped without
    /// suspicion. Fault-free runs skip all of that accounting, so their
    /// metrics stay byte-identical.
    ///
    /// # Errors
    ///
    /// Returns the last replica's error if every replica fails.
    pub fn load_replicated(
        &self,
        from: NodeId,
        entry: EntryId,
        replicas: &ReplicaSet,
    ) -> DmemResult<Vec<u8>> {
        let mut last_err = DmemError::EntryNotFound(entry);
        let mut unresponsive: Vec<NodeId> = Vec::new();
        for (skipped, &node) in replicas.nodes.iter().enumerate() {
            match self.store.load(from, node, entry) {
                Ok(data) => {
                    if skipped > 0 && self.store.fabric().faults_installed() {
                        let metrics = self.store.fabric().metrics();
                        metrics.counter("cluster.failover.reads").inc();
                        let now = self.store.fabric().clock().now();
                        self.store.fabric().clock().tracer().record_async(
                            "cluster",
                            "failover.read",
                            now,
                            now,
                            &[("skipped", skipped as u64)],
                        );
                        for &suspect in &unresponsive {
                            if self.membership().mark_suspect(suspect) {
                                metrics.counter("cluster.suspect.marked").inc();
                            }
                        }
                    }
                    return Ok(data);
                }
                Err(e) => {
                    if self.store.fabric().faults_installed()
                        && matches!(
                            e,
                            DmemError::Timeout { .. }
                                | DmemError::LinkDown { .. }
                                | DmemError::NodeUnavailable(_)
                        )
                    {
                        unresponsive.push(node);
                    }
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Deletes the entry from every reachable replica. Unreachable
    /// replicas are skipped (their pools vanish with the node anyway).
    pub fn delete_replicated(&self, from: NodeId, entry: EntryId, replicas: &ReplicaSet) {
        for &node in &replicas.nodes {
            let _ = self.store.delete(from, node, entry);
        }
    }

    /// Counts how many *distinct* replicas still hold the entry.
    ///
    /// Distinctness matters: a replica list that ends up mentioning the
    /// same node twice (however it got that way) provides one copy of
    /// redundancy, not two, and counting it twice would mask a degraded
    /// entry from the repair scan.
    pub fn live_degree(&self, entry: EntryId, replicas: &ReplicaSet) -> usize {
        let mut counted: Vec<NodeId> = Vec::with_capacity(replicas.nodes.len());
        for &node in &replicas.nodes {
            if !counted.contains(&node)
                && self.membership().is_alive(node)
                && self.store.hosts_entry(node, entry)
            {
                counted.push(node);
            }
        }
        counted.len()
    }

    /// Restores a degraded replica set back to full degree: reads the
    /// payload from a surviving replica and stores fresh copies on newly
    /// placed nodes. Returns the repaired set.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] if no replica survives, or
    /// placement errors if the cluster is too small to restore the degree.
    pub fn re_replicate(
        &self,
        from: NodeId,
        entry: EntryId,
        replicas: &ReplicaSet,
    ) -> DmemResult<ReplicaSet> {
        let span = self
            .store
            .fabric()
            .clock()
            .tracer()
            .span("cluster", "re_replicate");
        span.tag("entry", entry);
        let survivors: Vec<NodeId> = replicas
            .nodes
            .iter()
            .copied()
            .filter(|&n| self.membership().is_alive(n) && self.store.hosts_entry(n, entry))
            .collect();
        if survivors.is_empty() {
            return Err(DmemError::EntryNotFound(entry));
        }
        let missing = self.factor.get().saturating_sub(survivors.len());
        if missing == 0 {
            return Ok(ReplicaSet { nodes: survivors });
        }
        let data = self.store.load(from, survivors[0], entry)?;
        let candidates: Vec<NodeId> = self
            .membership()
            .candidates(from)
            .into_iter()
            .filter(|n| !survivors.contains(n))
            .collect();
        let new_hosts = self.placer.pick(&candidates, missing)?;
        let mut nodes = survivors;
        for &node in &new_hosts {
            self.store.store(from, node, entry, data.clone())?;
            nodes.push(node);
        }
        Ok(ReplicaSet { nodes })
    }
}

impl fmt::Debug for Replicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replicator")
            .field("factor", &self.factor)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_net::Fabric;
    use dmem_sim::{CostModel, DetRng, FailureEvent, FailureInjector, SimClock};
    use dmem_types::{ByteSize, PlacementStrategy, ServerId};

    fn setup(n: u32) -> (FailureInjector, Arc<RemoteStore>, Replicator) {
        let clock = SimClock::new();
        let failures = FailureInjector::new(clock.clone());
        let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures.clone());
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let membership = ClusterMembership::new(nodes, failures.clone());
        let store =
            Arc::new(RemoteStore::new(fabric, membership.clone(), ByteSize::from_kib(64)).unwrap());
        let placer = Placer::new(
            PlacementStrategy::PowerOfTwoChoices,
            membership,
            DetRng::new(1),
        );
        let replicator = Replicator::new(Arc::clone(&store), placer, ReplicationFactor::TRIPLE);
        (failures, store, replicator)
    }

    fn entry(k: u64) -> EntryId {
        EntryId::new(ServerId::new(NodeId::new(0), 0), k)
    }

    #[test]
    fn writes_land_on_three_distinct_nodes() {
        let (_, store, rep) = setup(5);
        let set = rep
            .store_replicated(NodeId::new(0), entry(1), &[9u8; 256], None)
            .unwrap();
        assert_eq!(set.degree(), 3);
        assert!(!set.nodes.contains(&NodeId::new(0)), "never self-hosted");
        for &n in &set.nodes {
            assert!(store.hosts_entry(n, entry(1)));
        }
        assert_eq!(rep.live_degree(entry(1), &set), 3);
    }

    #[test]
    fn read_fails_over_across_replicas() {
        let (failures, _, rep) = setup(5);
        let set = rep
            .store_replicated(NodeId::new(0), entry(1), &[5u8; 64], None)
            .unwrap();
        // Kill the primary and the second replica: third still serves.
        failures.inject_now(FailureEvent::NodeDown(set.nodes[0]));
        failures.inject_now(FailureEvent::NodeDown(set.nodes[1]));
        assert_eq!(
            rep.load_replicated(NodeId::new(0), entry(1), &set).unwrap(),
            vec![5u8; 64]
        );
        assert_eq!(rep.live_degree(entry(1), &set), 1);
    }

    #[test]
    fn all_replicas_down_errors() {
        let (failures, _, rep) = setup(5);
        let set = rep
            .store_replicated(NodeId::new(0), entry(1), &[1], None)
            .unwrap();
        for &n in &set.nodes {
            failures.inject_now(FailureEvent::NodeDown(n));
        }
        assert!(rep.load_replicated(NodeId::new(0), entry(1), &set).is_err());
    }

    #[test]
    fn failed_write_rolls_back_all_copies() {
        let (failures, store, rep) = setup(4);
        // With 4 nodes, candidates for node 0 are {1,2,3}; kill node 3 so
        // the triple write must fail partway (placement can't avoid it).
        failures.inject_now(FailureEvent::NodeDown(NodeId::new(3)));
        let err = rep
            .store_replicated(NodeId::new(0), entry(1), &[1], None)
            .unwrap_err();
        // Either placement already saw only 2 candidates, or the write
        // reached some replicas and rolled back.
        assert!(matches!(
            err,
            DmemError::ReplicationFailed { .. } | DmemError::CapacityExhausted { .. }
        ));
        for n in 1..3 {
            assert!(
                !store.hosts_entry(NodeId::new(n), entry(1)),
                "rollback must leave no copy on node {n}"
            );
        }
    }

    #[test]
    fn re_replication_restores_degree() {
        let (failures, store, rep) = setup(6);
        let set = rep
            .store_replicated(NodeId::new(0), entry(1), &[3u8; 128], None)
            .unwrap();
        let victim = set.nodes[1];
        failures.inject_now(FailureEvent::NodeDown(victim));
        store.reset_node(victim).ok(); // crash loses contents
        failures.inject_now(FailureEvent::NodeUp(victim));
        store.reset_node(victim).unwrap();

        assert_eq!(rep.live_degree(entry(1), &set), 2);
        let repaired = rep.re_replicate(NodeId::new(0), entry(1), &set).unwrap();
        assert_eq!(repaired.degree(), 3);
        assert_eq!(rep.live_degree(entry(1), &repaired), 3);
        // The payload is intact on the repaired set.
        assert_eq!(
            rep.load_replicated(NodeId::new(0), entry(1), &repaired).unwrap(),
            vec![3u8; 128]
        );
    }

    #[test]
    fn re_replicate_picks_live_non_duplicate_host() {
        // A replica host dies for good (no restart). The repaired set must
        // be back at factor with a replacement that is (a) not the dead
        // node, (b) not a duplicate of a survivor, (c) alive, and (d) a
        // legal placement candidate (never the writing node itself).
        let (failures, store, rep) = setup(6);
        let set = rep
            .store_replicated(NodeId::new(0), entry(1), &[8u8; 128], None)
            .unwrap();
        let victim = set.nodes[0];
        failures.inject_now(FailureEvent::NodeDown(victim));

        let repaired = rep.re_replicate(NodeId::new(0), entry(1), &set).unwrap();
        assert_eq!(repaired.degree(), rep.factor().get());
        let distinct: std::collections::HashSet<_> = repaired.nodes.iter().collect();
        assert_eq!(distinct.len(), repaired.degree(), "duplicates in {repaired:?}");
        assert!(
            !repaired.nodes.contains(&victim),
            "repair re-used dead node {victim}: {repaired:?}"
        );
        assert!(
            !repaired.nodes.contains(&NodeId::new(0)),
            "repair placed a replica on the writer: {repaired:?}"
        );
        for &n in &repaired.nodes {
            assert!(rep.membership().is_alive(n), "{n} is not alive");
            assert!(store.hosts_entry(n, entry(1)), "{n} holds no copy");
        }
        // The survivors were kept — repair copies once, not three times.
        for &n in &set.nodes {
            if n != victim {
                assert!(repaired.nodes.contains(&n), "survivor {n} was dropped");
            }
        }
    }

    #[test]
    fn live_degree_counts_distinct_replicas_once() {
        let (_, _, rep) = setup(6);
        let set = rep
            .store_replicated(NodeId::new(0), entry(1), &[1u8; 32], None)
            .unwrap();
        // A corrupted list mentioning one host twice is one copy of
        // redundancy, not two.
        let duplicated = ReplicaSet {
            nodes: vec![set.nodes[0], set.nodes[0], set.nodes[1]],
        };
        assert_eq!(rep.live_degree(entry(1), &duplicated), 2);
    }

    #[test]
    fn re_replicate_noop_when_healthy() {
        let (_, _, rep) = setup(6);
        let set = rep
            .store_replicated(NodeId::new(0), entry(1), &[1], None)
            .unwrap();
        let same = rep.re_replicate(NodeId::new(0), entry(1), &set).unwrap();
        assert_eq!(same.degree(), 3);
    }

    #[test]
    fn delete_removes_reachable_copies() {
        let (_, store, rep) = setup(5);
        let set = rep
            .store_replicated(NodeId::new(0), entry(1), &[1], None)
            .unwrap();
        rep.delete_replicated(NodeId::new(0), entry(1), &set);
        for &n in &set.nodes {
            assert!(!store.hosts_entry(n, entry(1)));
        }
    }

    #[test]
    fn candidate_restriction_respected() {
        let (_, _, rep) = setup(8);
        let allowed = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        let set = rep
            .store_replicated(NodeId::new(0), entry(1), &[1], Some(&allowed))
            .unwrap();
        for n in &set.nodes {
            assert!(allowed.contains(n), "{n} outside the allowed group");
        }
    }
}
