//! The remote memory store: RDMC → RDMS over the RDMA fabric.
//!
//! Every node donates a *receive buffer pool* — an RDMA-registered region
//! of its DRAM — to the cluster (paper §IV-B). A client node (acting as
//! RDMC) parks data entries in a chosen host's pool with a control-plane
//! request followed by a one-sided RDMA WRITE, and fetches them back with
//! an RDMA READ. Batched variants store or fetch a whole window of
//! entries in a single verb, which is the §IV-H batching optimization.

use crate::membership::ClusterMembership;
use dmem_net::{ChannelKind, ConnectionManager, Fabric, RegionHandle};
use dmem_types::{ByteSize, DmemError, DmemResult, EntryId, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// Size of a control-plane request/response message (entry id, offsets,
/// lengths — the "disaggregated memory system channel" traffic).
const CONTROL_MSG_BYTES: usize = 48;

#[derive(Debug, Clone, Copy)]
struct Extent {
    offset: u64,
    len: u64,
}

#[derive(Debug)]
struct HostState {
    region: RegionHandle,
    capacity: u64,
    /// Free extents sorted by offset, coalesced on free.
    free: Vec<Extent>,
    entries: HashMap<EntryId, Extent>,
}

impl HostState {
    fn new(region: RegionHandle, capacity: u64) -> Self {
        HostState {
            region,
            capacity,
            free: vec![Extent {
                offset: 0,
                len: capacity,
            }],
            entries: HashMap::new(),
        }
    }

    fn free_bytes(&self) -> u64 {
        self.free.iter().map(|e| e.len).sum()
    }

    /// First-fit allocation.
    fn alloc(&mut self, len: u64) -> Option<u64> {
        let idx = self.free.iter().position(|e| e.len >= len)?;
        let extent = &mut self.free[idx];
        let offset = extent.offset;
        extent.offset += len;
        extent.len -= len;
        if extent.len == 0 {
            self.free.remove(idx);
        }
        Some(offset)
    }

    /// Returns an extent to the free list, coalescing neighbours.
    fn release(&mut self, extent: Extent) {
        let pos = self
            .free
            .partition_point(|e| e.offset < extent.offset);
        self.free.insert(pos, extent);
        // Coalesce with successor, then predecessor.
        if pos + 1 < self.free.len()
            && self.free[pos].offset + self.free[pos].len == self.free[pos + 1].offset
        {
            self.free[pos].len += self.free[pos + 1].len;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].offset + self.free[pos - 1].len == self.free[pos].offset {
            self.free[pos - 1].len += self.free[pos].len;
            self.free.remove(pos);
        }
    }
}

/// Statistics for one node's receive pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteStoreStats {
    /// Pool capacity.
    pub capacity: ByteSize,
    /// Unallocated bytes.
    pub free: ByteSize,
    /// Entries hosted.
    pub entries: usize,
}

/// The cluster-wide remote memory service.
///
/// One instance models all RDMS agents plus the RDMC client paths between
/// them; per-client connection managers keep data and control channels per
/// peer, exactly as §IV-G prescribes.
pub struct RemoteStore {
    fabric: Fabric,
    membership: ClusterMembership,
    pool_size: ByteSize,
    hosts: Mutex<HashMap<NodeId, HostState>>,
    clients: Mutex<HashMap<NodeId, ConnectionManager>>,
}

impl RemoteStore {
    /// Registers a receive pool of `pool_size` on every configured node.
    ///
    /// # Errors
    ///
    /// Propagates registration failures (e.g. a node already down).
    pub fn new(
        fabric: Fabric,
        membership: ClusterMembership,
        pool_size: ByteSize,
    ) -> DmemResult<Self> {
        let mut hosts = HashMap::new();
        for &node in membership.nodes() {
            let region = fabric.register(node, pool_size)?;
            hosts.insert(node, HostState::new(region, pool_size.as_u64()));
            membership.advertise_free(node, pool_size);
        }
        Ok(RemoteStore {
            fabric,
            membership,
            pool_size,
            hosts: Mutex::new(hosts),
            clients: Mutex::new(HashMap::new()),
        })
    }

    /// The membership this store serves.
    pub fn membership(&self) -> &ClusterMembership {
        &self.membership
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    fn client(&self, node: NodeId) -> ConnectionManager {
        self.clients
            .lock()
            .entry(node)
            .or_insert_with(|| ConnectionManager::new(node, self.fabric.clone()))
            .clone()
    }

    fn control_roundtrip(&self, from: NodeId, to: NodeId) -> DmemResult<()> {
        if from == to {
            // Loopback control requests stay on-node and skip the NIC.
            if !self.membership.is_alive(to) {
                return Err(DmemError::NodeUnavailable(to));
            }
            return Ok(());
        }
        let cm = self.client(from);
        let qp = cm.channel(to, ChannelKind::Control)?;
        self.fabric.send(&qp, vec![0u8; CONTROL_MSG_BYTES])?;
        // Drain on the peer side so queues stay bounded.
        let _ = self.fabric.recv(&self.fabric.peer_handle(&qp))?;
        Ok(())
    }

    fn advertise(&self, node: NodeId, hosts: &HashMap<NodeId, HostState>) {
        if let Some(state) = hosts.get(&node) {
            self.membership
                .advertise_free(node, ByteSize::new(state.free_bytes()));
        }
    }

    /// Parks `data` for `entry` on node `to`, requested by node `from`.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::CapacityExhausted`] when the host pool cannot
    /// fit the entry, plus any fabric path errors.
    pub fn store(&self, from: NodeId, to: NodeId, entry: EntryId, data: Vec<u8>) -> DmemResult<()> {
        self.store_batch(from, to, vec![(entry, data)])
    }

    /// Parks a whole window of entries on `to` in one control message and
    /// one RDMA WRITE over a contiguous extent (the §IV-H batching win).
    ///
    /// All-or-nothing: on any failure no entry of the batch is stored.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`RemoteStore::store`].
    pub fn store_batch(
        &self,
        from: NodeId,
        to: NodeId,
        batch: Vec<(EntryId, Vec<u8>)>,
    ) -> DmemResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let total: u64 = batch.iter().map(|(_, d)| d.len() as u64).sum();
        let span = self.fabric.clock().tracer().span("cluster", "store_batch");
        span.tag("host", to);
        span.tag("entries", batch.len());
        span.tag("bytes", total);
        self.control_roundtrip(from, to)?;
        // Replacing existing entries frees their old extents first so a
        // steady-state rewrite of the same window never grows the pool.
        let mut hosts = self.hosts.lock();
        let state = hosts.get_mut(&to).ok_or(DmemError::NodeUnavailable(to))?;
        let mut replaced: Vec<(EntryId, Extent)> = Vec::new();
        for (entry, _) in &batch {
            if let Some(old) = state.entries.remove(entry) {
                state.release(old);
                replaced.push((*entry, old));
            }
        }
        let region = state.region;
        // Preferred layout: one contiguous extent for the whole window
        // (one RDMA write, batch-loadable in one span read). Fragmented
        // pools fall back to scattered per-entry extents.
        let mut placed: Vec<(EntryId, Extent)> = Vec::with_capacity(batch.len());
        let mut writes: Vec<(u64, Vec<u8>)> = Vec::new(); // (offset, bytes)
        if let Some(base) = state.alloc(total) {
            let mut buf = Vec::with_capacity(total as usize);
            let mut cursor = base;
            for (entry, data) in &batch {
                placed.push((
                    *entry,
                    Extent {
                        offset: cursor,
                        len: data.len() as u64,
                    },
                ));
                cursor += data.len() as u64;
                buf.extend_from_slice(data);
            }
            writes.push((base, buf));
        } else {
            for (entry, data) in &batch {
                match state.alloc(data.len() as u64) {
                    Some(offset) => {
                        placed.push((
                            *entry,
                            Extent {
                                offset,
                                len: data.len() as u64,
                            },
                        ));
                        writes.push((offset, data.clone()));
                    }
                    None => {
                        // Roll back allocations; restore replaced entries.
                        for (_, extent) in &placed {
                            state.release(*extent);
                        }
                        for (entry, old) in replaced {
                            // Space was freed above; re-reserving the same
                            // extent may not be possible after churn, so
                            // the entry is simply dropped (the caller
                            // re-stores it elsewhere or on disk).
                            let _ = entry;
                            let _ = old;
                        }
                        return Err(DmemError::CapacityExhausted {
                            pool: format!("remote pool on {to}"),
                        });
                    }
                }
            }
        }
        drop(hosts);

        let cm = self.client(from);
        let qp = cm.channel(to, ChannelKind::Data)?;
        for (offset, bytes) in &writes {
            if let Err(e) = self.fabric.write(&qp, bytes, &region, *offset) {
                // Roll back every allocation of this batch.
                let mut hosts = self.hosts.lock();
                if let Some(state) = hosts.get_mut(&to) {
                    for (_, extent) in &placed {
                        state.release(*extent);
                    }
                }
                return Err(e);
            }
        }

        let mut hosts = self.hosts.lock();
        let state = hosts.get_mut(&to).ok_or(DmemError::NodeUnavailable(to))?;
        for (entry, extent) in placed {
            if let Some(old) = state.entries.insert(entry, extent) {
                state.release(old);
            }
        }
        self.advertise(to, &hosts);
        Ok(())
    }

    /// Fetches `entry` back from node `to`.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] if the host does not hold the
    /// entry, plus fabric path errors.
    pub fn load(&self, from: NodeId, to: NodeId, entry: EntryId) -> DmemResult<Vec<u8>> {
        let mut out = self.load_batch(from, to, &[entry])?;
        Ok(out.remove(0))
    }

    /// Fetches several entries from `to`. Entries stored contiguously
    /// (e.g. by one [`RemoteStore::store_batch`] call) are fetched in a
    /// single RDMA READ spanning them — this is FastSwap's proactive batch
    /// swap-in; others fall back to per-entry reads.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] if any entry is missing (no
    /// partial results), plus fabric path errors.
    pub fn load_batch(
        &self,
        from: NodeId,
        to: NodeId,
        entries: &[EntryId],
    ) -> DmemResult<Vec<Vec<u8>>> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        let span = self.fabric.clock().tracer().span("cluster", "load_batch");
        span.tag("host", to);
        span.tag("entries", entries.len());
        self.control_roundtrip(from, to)?;
        let (region, extents) = {
            let hosts = self.hosts.lock();
            let state = hosts.get(&to).ok_or(DmemError::NodeUnavailable(to))?;
            let mut extents = Vec::with_capacity(entries.len());
            for e in entries {
                extents.push(*state.entries.get(e).ok_or(DmemError::EntryNotFound(*e))?);
            }
            (state.region, extents)
        };
        let cm = self.client(from);
        let qp = cm.channel(to, ChannelKind::Data)?;

        // Coalesce maximal contiguous runs of extents into single reads:
        // entries stored by one batched write are adjacent, so a batch
        // swap-in usually needs one verb per originating window.
        let mut order: Vec<usize> = (0..extents.len()).collect();
        order.sort_by_key(|&i| extents[i].offset);
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); extents.len()];
        let mut run: Vec<usize> = Vec::new();
        let mut run_end = 0u64;
        let flush_run = |run: &mut Vec<usize>, out: &mut Vec<Vec<u8>>| -> DmemResult<()> {
            if run.is_empty() {
                return Ok(());
            }
            let start = extents[run[0]].offset;
            let last = extents[*run.last().expect("nonempty run")];
            let span = self
                .fabric
                .read(&qp, &region, start, (last.offset + last.len - start) as usize)?;
            for &i in run.iter() {
                let s = (extents[i].offset - start) as usize;
                out[i] = span[s..s + extents[i].len as usize].to_vec();
            }
            run.clear();
            Ok(())
        };
        for &i in &order {
            if !run.is_empty() && extents[i].offset != run_end {
                flush_run(&mut run, &mut out)?;
            }
            run_end = extents[i].offset + extents[i].len;
            run.push(i);
        }
        flush_run(&mut run, &mut out)?;
        Ok(out)
    }

    /// Removes `entry` from node `to`, freeing its extent.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] if absent.
    pub fn delete(&self, from: NodeId, to: NodeId, entry: EntryId) -> DmemResult<()> {
        self.control_roundtrip(from, to)?;
        let mut hosts = self.hosts.lock();
        let state = hosts.get_mut(&to).ok_or(DmemError::NodeUnavailable(to))?;
        let extent = state
            .entries
            .remove(&entry)
            .ok_or(DmemError::EntryNotFound(entry))?;
        state.release(extent);
        self.advertise(to, &hosts);
        Ok(())
    }

    /// `true` if node `to` currently hosts `entry`.
    pub fn hosts_entry(&self, to: NodeId, entry: EntryId) -> bool {
        self.hosts
            .lock()
            .get(&to)
            .is_some_and(|s| s.entries.contains_key(&entry))
    }

    /// Entries hosted on `node`, in ascending id order (used by the
    /// eviction handler). The order is load-bearing: the handler migrates
    /// a bounded batch per scan, and `HashMap` iteration order varies per
    /// process, which made eviction choices — and every downstream
    /// placement — nondeterministic across runs.
    pub fn entries_on(&self, node: NodeId) -> Vec<EntryId> {
        let mut entries: Vec<EntryId> = self
            .hosts
            .lock()
            .get(&node)
            .map(|s| s.entries.keys().copied().collect())
            .unwrap_or_default();
        entries.sort_unstable();
        entries
    }

    /// Pool statistics for `node`.
    pub fn stats(&self, node: NodeId) -> Option<RemoteStoreStats> {
        self.hosts.lock().get(&node).map(|s| RemoteStoreStats {
            capacity: ByteSize::new(s.capacity),
            free: ByteSize::new(s.free_bytes()),
            entries: s.entries.len(),
        })
    }

    /// Handles a node restart after a crash: its DRAM contents are gone,
    /// so all hosted entries vanish and a fresh region is registered.
    ///
    /// # Errors
    ///
    /// Propagates registration failures if the node is still down.
    pub fn reset_node(&self, node: NodeId) -> DmemResult<usize> {
        let mut hosts = self.hosts.lock();
        let old = hosts.remove(&node);
        let lost = old.as_ref().map(|s| s.entries.len()).unwrap_or(0);
        if let Some(state) = old {
            let _ = self.fabric.deregister(&state.region);
        }
        let region = self.fabric.register(node, self.pool_size)?;
        hosts.insert(node, HostState::new(region, self.pool_size.as_u64()));
        self.advertise(node, &hosts);
        Ok(lost)
    }

    /// Shrinks `node`'s pool by deregistering `bytes` of slack capacity
    /// (the §IV-F "deregister preemptively" path). Only unallocated space
    /// can be reclaimed; returns the bytes actually reclaimed.
    pub fn shrink_pool(&self, node: NodeId, bytes: ByteSize) -> ByteSize {
        let mut hosts = self.hosts.lock();
        let Some(state) = hosts.get_mut(&node) else {
            return ByteSize::ZERO;
        };
        let mut to_reclaim = bytes.as_u64();
        let mut reclaimed = 0u64;
        // Take from the tail-most free extents first.
        while to_reclaim > 0 {
            let Some(last) = state.free.last_mut() else { break };
            let take = last.len.min(to_reclaim);
            last.len -= take;
            state.capacity -= take;
            reclaimed += take;
            to_reclaim -= take;
            if last.len == 0 {
                state.free.pop();
            }
        }
        self.advertise(node, &hosts);
        ByteSize::new(reclaimed)
    }
}

impl fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hosts = self.hosts.lock();
        f.debug_struct("RemoteStore")
            .field("nodes", &hosts.len())
            .field("pool_size", &self.pool_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::{CostModel, FailureEvent, FailureInjector, SimClock};
    use dmem_types::ServerId;

    fn setup(n: u32, pool_kib: u64) -> (SimClock, FailureInjector, RemoteStore) {
        let clock = SimClock::new();
        let failures = FailureInjector::new(clock.clone());
        let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures.clone());
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let membership = ClusterMembership::new(nodes, failures.clone());
        let store = RemoteStore::new(fabric, membership, ByteSize::from_kib(pool_kib)).unwrap();
        (clock, failures, store)
    }

    fn entry(k: u64) -> EntryId {
        EntryId::new(ServerId::new(NodeId::new(0), 0), k)
    }

    #[test]
    fn store_load_roundtrip() {
        let (_, _, store) = setup(2, 64);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        store.store(a, b, entry(1), vec![7u8; 4096]).unwrap();
        assert!(store.hosts_entry(b, entry(1)));
        assert_eq!(store.load(a, b, entry(1)).unwrap(), vec![7u8; 4096]);
    }

    #[test]
    fn store_updates_advertised_free() {
        let (_, _, store) = setup(2, 64);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let before = store.membership().free_of(b);
        store.store(a, b, entry(1), vec![0u8; 4096]).unwrap();
        let after = store.membership().free_of(b);
        assert_eq!(before - after, ByteSize::new(4096));
    }

    #[test]
    fn capacity_exhaustion() {
        let (_, _, store) = setup(2, 8);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        store.store(a, b, entry(1), vec![0u8; 8192]).unwrap();
        assert!(matches!(
            store.store(a, b, entry(2), vec![0u8; 1]),
            Err(DmemError::CapacityExhausted { .. })
        ));
        // Deleting frees the space again.
        store.delete(a, b, entry(1)).unwrap();
        store.store(a, b, entry(2), vec![0u8; 4096]).unwrap();
    }

    #[test]
    fn batch_store_and_contiguous_batch_load() {
        let (clock, _, store) = setup(2, 256);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let batch: Vec<(EntryId, Vec<u8>)> = (0..16)
            .map(|k| (entry(k), vec![k as u8; 4096]))
            .collect();
        store.store_batch(a, b, batch).unwrap();

        let keys: Vec<EntryId> = (0..16).map(entry).collect();
        let t0 = clock.now();
        let loaded = store.load_batch(a, b, &keys).unwrap();
        let batched_time = clock.now() - t0;
        for (k, data) in loaded.iter().enumerate() {
            assert_eq!(data, &vec![k as u8; 4096]);
        }

        // Compare with 16 singleton loads: batching must win.
        let t1 = clock.now();
        for k in &keys {
            let _ = store.load(a, b, *k).unwrap();
        }
        let single_time = clock.now() - t1;
        assert!(
            batched_time < single_time,
            "batch {batched_time} >= singles {single_time}"
        );
    }

    #[test]
    fn non_contiguous_batch_load_still_correct() {
        let (_, _, store) = setup(2, 256);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        for k in 0..4 {
            store.store(a, b, entry(k), vec![k as u8; 1024]).unwrap();
        }
        // Delete one in the middle so remaining extents have a hole.
        store.delete(a, b, entry(1)).unwrap();
        let loaded = store.load_batch(a, b, &[entry(0), entry(2), entry(3)]).unwrap();
        assert_eq!(loaded[0], vec![0u8; 1024]);
        assert_eq!(loaded[1], vec![2u8; 1024]);
        assert_eq!(loaded[2], vec![3u8; 1024]);
    }

    #[test]
    fn missing_entry_not_found() {
        let (_, _, store) = setup(2, 64);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        assert!(matches!(
            store.load(a, b, entry(9)),
            Err(DmemError::EntryNotFound(_))
        ));
        assert!(matches!(
            store.delete(a, b, entry(9)),
            Err(DmemError::EntryNotFound(_))
        ));
    }

    #[test]
    fn replace_frees_old_extent() {
        let (_, _, store) = setup(2, 8);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        store.store(a, b, entry(1), vec![1u8; 4096]).unwrap();
        store.store(a, b, entry(1), vec![2u8; 4096]).unwrap();
        assert_eq!(store.load(a, b, entry(1)).unwrap(), vec![2u8; 4096]);
        let stats = store.stats(b).unwrap();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.free, ByteSize::new(4096), "old extent was released");
    }

    #[test]
    fn dead_host_rejected_and_rolled_back() {
        let (_, failures, store) = setup(2, 64);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        failures.inject_now(FailureEvent::NodeDown(b));
        let err = store.store(a, b, entry(1), vec![0u8; 64]).unwrap_err();
        assert!(matches!(err, DmemError::NodeUnavailable(_)));
        failures.inject_now(FailureEvent::NodeUp(b));
        // Nothing leaked: full capacity available after recovery.
        assert_eq!(store.stats(b).unwrap().free, ByteSize::from_kib(64));
    }

    #[test]
    fn crash_loses_hosted_entries() {
        let (_, failures, store) = setup(2, 64);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        store.store(a, b, entry(1), vec![5u8; 512]).unwrap();
        failures.inject_now(FailureEvent::NodeDown(b));
        failures.inject_now(FailureEvent::NodeUp(b));
        let lost = store.reset_node(b).unwrap();
        assert_eq!(lost, 1);
        assert!(!store.hosts_entry(b, entry(1)));
        assert!(matches!(
            store.load(a, b, entry(1)),
            Err(DmemError::EntryNotFound(_))
        ));
    }

    #[test]
    fn shrink_pool_reclaims_only_free_space() {
        let (_, _, store) = setup(2, 64);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        store.store(a, b, entry(1), vec![0u8; 4096]).unwrap();
        let reclaimed = store.shrink_pool(b, ByteSize::from_kib(128));
        assert_eq!(reclaimed, ByteSize::from_kib(60), "only the free 60 KiB");
        let stats = store.stats(b).unwrap();
        assert_eq!(stats.capacity, ByteSize::new(4096));
        assert_eq!(stats.free, ByteSize::ZERO);
    }

    #[test]
    fn free_list_coalesces() {
        let (_, _, store) = setup(2, 16);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        for k in 0..4 {
            store.store(a, b, entry(k), vec![0u8; 4096]).unwrap();
        }
        // Free in an order that requires coalescing both directions.
        for k in [1, 3, 0, 2] {
            store.delete(a, b, entry(k)).unwrap();
        }
        // Whole pool available as one extent again: a full-size store fits.
        store.store(a, b, entry(9), vec![0u8; 16 * 1024]).unwrap();
    }
}
