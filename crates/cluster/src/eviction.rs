//! The remote slab eviction handler (paper §IV-F).
//!
//! "Remote idle memory is monitored and when it drops below certain
//! threshold, remote memory slabs will be deregistered preemptively
//! through the remote slab eviction handler … At the same time, new
//! remote memory servers will be selected to host the evicted pages in
//! order to maintain the triple replica of the data entries."
//!
//! [`RemoteSlabEvictor::scan`] implements that loop: for every host whose
//! receive pool's free space fell below the threshold, it migrates hosted
//! entries to freshly placed peers, then deregisters (shrinks) the
//! reclaimed capacity so the host gets its DRAM back. The returned
//! [`EvictionOutcome`] lists every move so the owners' disaggregated
//! memory maps can be updated.

use crate::placement::Placer;
use crate::remote::RemoteStore;
use dmem_types::{ByteSize, DmemResult, EntryId, NodeId};
use std::fmt;
use std::sync::Arc;

/// Maps an entry to its owning tenant's priority (higher = more
/// important). Installed on the evictor by the QoS layer so migration
/// churn lands on low-priority tenants first.
pub type PriorityResolver = Arc<dyn Fn(EntryId) -> u8 + Send + Sync>;

/// What one eviction scan did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvictionOutcome {
    /// Entries migrated: `(entry, old_host, new_host)`.
    pub moves: Vec<(EntryId, NodeId, NodeId)>,
    /// Capacity deregistered and returned to host nodes.
    pub reclaimed: ByteSize,
}

impl EvictionOutcome {
    /// `true` if the scan found nothing to do.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty() && self.reclaimed.is_zero()
    }
}

/// Periodic eviction policy for over-committed remote pools.
#[derive(Clone)]
pub struct RemoteSlabEvictor {
    /// Hosts with less free pool space than this are relieved.
    threshold: ByteSize,
    /// At most this many entries migrate away from one host per scan.
    batch: usize,
    /// Optional tenant-priority resolver: when set, migration candidates
    /// are ordered lowest-priority-first so high-priority tenants' pages
    /// stay put. `None` preserves the historical entry-id order exactly.
    priority: Option<PriorityResolver>,
}

impl RemoteSlabEvictor {
    /// Creates an evictor with the given low-water threshold and per-host
    /// migration batch limit.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(threshold: ByteSize, batch: usize) -> Self {
        assert!(batch > 0, "batch must be at least 1");
        RemoteSlabEvictor {
            threshold,
            batch,
            priority: None,
        }
    }

    /// Installs a tenant-priority resolver; see [`PriorityResolver`].
    pub fn with_priority(mut self, resolver: PriorityResolver) -> Self {
        self.priority = Some(resolver);
        self
    }

    /// The low-water threshold.
    pub fn threshold(&self) -> ByteSize {
        self.threshold
    }

    /// Scans every node and relieves those below the threshold.
    ///
    /// # Errors
    ///
    /// Individual migration failures are skipped (the entry stays on its
    /// old host); only infrastructure-level failures (no destination at
    /// all) abort the scan.
    pub fn scan(&self, store: &RemoteStore, placer: &Placer) -> DmemResult<EvictionOutcome> {
        let mut outcome = EvictionOutcome::default();
        let nodes: Vec<NodeId> = store.membership().nodes().to_vec();
        for host in nodes {
            let Some(stats) = store.stats(host) else { continue };
            if stats.free >= self.threshold || !store.membership().is_alive(host) {
                continue;
            }
            let deficit = self.threshold - stats.free;
            let mut moved_bytes = ByteSize::ZERO;
            let mut entries = store.entries_on(host);
            if let Some(priority) = &self.priority {
                // Stable and deterministic: equal priorities fall back to
                // the entry-id order `entries_on` already guarantees.
                entries.sort_by_key(|&e| (priority(e), e));
            }
            for entry in entries.into_iter().take(self.batch) {
                if moved_bytes >= deficit {
                    break;
                }
                // Destination: an alive peer that does not already hold a
                // copy of this entry (so replica degree is preserved).
                let candidates: Vec<NodeId> = store
                    .membership()
                    .candidates(host)
                    .into_iter()
                    .filter(|&n| !store.hosts_entry(n, entry))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let Ok(picked) = placer.pick(&candidates, 1) else {
                    continue;
                };
                let to = picked[0];
                // Migrate: pull to the new host, then drop from the old.
                let Ok(data) = store.load(to, host, entry) else {
                    continue;
                };
                let len = data.len();
                if store.store(host, to, entry, data).is_err() {
                    continue;
                }
                if store.delete(host, host, entry).is_err() {
                    // Undo to avoid a duplicate copy.
                    let _ = store.delete(host, to, entry);
                    continue;
                }
                moved_bytes += ByteSize::from(len);
                outcome.moves.push((entry, host, to));
            }
            // Deregister the recovered capacity so the host's own
            // applications get their DRAM back.
            outcome.reclaimed += store.shrink_pool(host, deficit.min(moved_bytes + stats.free));
        }
        Ok(outcome)
    }
}

impl fmt::Debug for RemoteSlabEvictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteSlabEvictor")
            .field("threshold", &self.threshold)
            .field("batch", &self.batch)
            .field("priority", &self.priority.is_some())
            .finish()
    }
}

impl fmt::Display for RemoteSlabEvictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "evictor(threshold={}, batch={})",
            self.threshold, self.batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::ClusterMembership;
    use dmem_net::Fabric;
    use dmem_sim::{CostModel, DetRng, FailureInjector, SimClock};
    use dmem_types::{PlacementStrategy, ServerId};

    fn setup(n: u32, pool_kib: u64) -> (RemoteStore, Placer) {
        let clock = SimClock::new();
        let failures = FailureInjector::new(clock.clone());
        let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures.clone());
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let membership = ClusterMembership::new(nodes, failures);
        let store = RemoteStore::new(fabric, membership.clone(), ByteSize::from_kib(pool_kib)).unwrap();
        let placer = Placer::new(
            PlacementStrategy::WeightedRoundRobin,
            membership,
            DetRng::new(3),
        );
        (store, placer)
    }

    fn entry(k: u64) -> EntryId {
        EntryId::new(ServerId::new(NodeId::new(9), 0), k)
    }

    #[test]
    fn healthy_cluster_is_left_alone() {
        let (store, placer) = setup(3, 64);
        let evictor = RemoteSlabEvictor::new(ByteSize::from_kib(4), 8);
        let outcome = evictor.scan(&store, &placer).unwrap();
        assert!(outcome.is_empty());
    }

    #[test]
    fn overloaded_host_gets_relieved() {
        let (store, placer) = setup(4, 16);
        let host = NodeId::new(1);
        // Fill the 16 KiB pool on node 1 completely.
        for k in 0..4 {
            store
                .store(NodeId::new(0), host, entry(k), vec![k as u8; 4096])
                .unwrap();
        }
        assert_eq!(store.stats(host).unwrap().free, ByteSize::ZERO);

        let evictor = RemoteSlabEvictor::new(ByteSize::from_kib(8), 8);
        let outcome = evictor.scan(&store, &placer).unwrap();
        assert!(!outcome.moves.is_empty());
        // Every moved entry still readable from its new host, intact.
        for (e, from, to) in &outcome.moves {
            assert_eq!(*from, host);
            assert!(store.hosts_entry(*to, *e));
            assert!(!store.hosts_entry(host, *e));
            let data = store.load(NodeId::new(0), *to, *e).unwrap();
            assert_eq!(data, vec![e.key() as u8; 4096]);
        }
        assert!(outcome.reclaimed > ByteSize::ZERO, "capacity was deregistered");
        // Host capacity shrank by the reclaimed amount.
        let stats = store.stats(host).unwrap();
        assert!(stats.capacity < ByteSize::from_kib(16));
    }

    #[test]
    fn destination_never_already_hosts_the_entry() {
        let (store, placer) = setup(3, 16);
        let host = NodeId::new(1);
        // The same entry already lives on node 2 (a replica).
        store
            .store(NodeId::new(0), NodeId::new(2), entry(0), vec![1u8; 512])
            .unwrap();
        for k in 0..4 {
            store
                .store(NodeId::new(0), host, entry(k), vec![2u8; 4096])
                .unwrap();
        }
        let evictor = RemoteSlabEvictor::new(ByteSize::from_kib(16), 8);
        let outcome = evictor.scan(&store, &placer).unwrap();
        for (e, _, to) in &outcome.moves {
            if e.key() == 0 {
                assert_ne!(*to, NodeId::new(2), "entry 0 must avoid its replica host");
            }
        }
    }

    #[test]
    fn batch_limit_caps_migrations() {
        let (store, placer) = setup(4, 32);
        let host = NodeId::new(1);
        for k in 0..8 {
            store
                .store(NodeId::new(0), host, entry(k), vec![0u8; 4096])
                .unwrap();
        }
        // Threshold of 16 KiB: only the stuffed host (free = 0) is below;
        // destinations keep ≥ 28 KiB free and stay out of scope.
        let evictor = RemoteSlabEvictor::new(ByteSize::from_kib(16), 2);
        let outcome = evictor.scan(&store, &placer).unwrap();
        assert!(!outcome.moves.is_empty());
        assert!(outcome.moves.len() <= 2);
    }

    #[test]
    fn priority_resolver_orders_low_priority_first() {
        let (store, placer) = setup(4, 32);
        let host = NodeId::new(1);
        for k in 0..8 {
            store
                .store(NodeId::new(0), host, entry(k), vec![0u8; 4096])
                .unwrap();
        }
        // Entries 0..4 are "high priority" (200), 4..8 are "low" (10).
        let resolver: PriorityResolver = Arc::new(|e| if e.key() < 4 { 200 } else { 10 });
        let evictor =
            RemoteSlabEvictor::new(ByteSize::from_kib(16), 4).with_priority(resolver);
        let outcome = evictor.scan(&store, &placer).unwrap();
        assert!(!outcome.moves.is_empty());
        for (e, _, _) in &outcome.moves {
            assert!(
                e.key() >= 4,
                "high-priority entry {e} migrated before low-priority ones"
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_panics() {
        let _ = RemoteSlabEvictor::new(ByteSize::from_kib(1), 0);
    }
}
