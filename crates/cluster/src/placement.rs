//! Replica placement policies (paper §IV-E).
//!
//! "Several algorithms can be employed to minimize memory imbalance across
//! nodes in a cluster (or a group), such as random, round robin (RR),
//! weighted RR, or power of two choices." All four are implemented behind
//! one [`Placer`]; the `ablation_placement` bench compares the imbalance
//! they produce.

use crate::membership::ClusterMembership;
use dmem_sim::shard::{ShardId, ShardMap};
use dmem_sim::{splitmix64, DetRng};
use dmem_types::{DmemError, DmemResult, NodeId, PlacementStrategy};
use parking_lot::Mutex;
use std::fmt;

/// Chooses the nodes that will host a replicated remote write.
pub struct Placer {
    strategy: PlacementStrategy,
    membership: ClusterMembership,
    rng: Mutex<DetRng>,
    rr_cursor: Mutex<usize>,
}

impl Placer {
    /// Creates a placer with the given strategy and a deterministic
    /// random stream.
    pub fn new(strategy: PlacementStrategy, membership: ClusterMembership, rng: DetRng) -> Self {
        Placer {
            strategy,
            membership,
            rng: Mutex::new(rng),
            rr_cursor: Mutex::new(0),
        }
    }

    /// The active strategy.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Picks `count` distinct nodes from `candidates` to host a replica
    /// set (first pick is the primary).
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::CapacityExhausted`] when fewer than `count`
    /// candidates exist.
    pub fn pick(&self, candidates: &[NodeId], count: usize) -> DmemResult<Vec<NodeId>> {
        if candidates.len() < count {
            return Err(DmemError::CapacityExhausted {
                pool: format!(
                    "placement: {} candidates for {count} replicas",
                    candidates.len()
                ),
            });
        }
        let mut picked: Vec<NodeId> = Vec::with_capacity(count);
        let mut remaining: Vec<NodeId> = candidates.to_vec();
        for _ in 0..count {
            let idx = self.pick_one(&remaining)?;
            picked.push(remaining.swap_remove(idx));
        }
        Ok(picked)
    }

    fn pick_one(&self, remaining: &[NodeId]) -> DmemResult<usize> {
        debug_assert!(!remaining.is_empty());
        let idx = match self.strategy {
            PlacementStrategy::Random => self.rng.lock().below(remaining.len()),
            PlacementStrategy::RoundRobin => {
                let mut cursor = self.rr_cursor.lock();
                let idx = *cursor % remaining.len();
                *cursor = cursor.wrapping_add(1);
                idx
            }
            PlacementStrategy::WeightedRoundRobin => {
                // Weight each candidate by advertised free memory; draw
                // proportionally. Falls back to uniform when all zero.
                let weights: Vec<u64> = remaining
                    .iter()
                    .map(|&n| self.membership.free_of(n).as_u64().max(1))
                    .collect();
                let total: u64 = weights.iter().sum();
                let mut rng = self.rng.lock();
                let mut draw = (rng.unit() * total as f64) as u64;
                let mut chosen = remaining.len() - 1;
                for (i, w) in weights.iter().enumerate() {
                    if draw < *w {
                        chosen = i;
                        break;
                    }
                    draw -= w;
                }
                chosen
            }
            PlacementStrategy::PowerOfTwoChoices => {
                let mut rng = self.rng.lock();
                let a = rng.below(remaining.len());
                let b = rng.below(remaining.len());
                drop(rng);
                if self.membership.free_of(remaining[a]) >= self.membership.free_of(remaining[b]) {
                    a
                } else {
                    b
                }
            }
        };
        Ok(idx)
    }
}

impl fmt::Debug for Placer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Placer")
            .field("strategy", &self.strategy)
            .finish()
    }
}

/// Hash-derived, shard-spreading replica placement for the rack model.
///
/// A pure function of `(page, hosts, map)` — no membership state, no
/// shared RNG — so every shard computes the same replica set for a page
/// without exchanging any message, which is what lets the sharded engine
/// resolve placement locally. Replicas avoid the faulting host and, while
/// possible, prefer hosts on *distinct shards*: a rack-level failure
/// domain spread, and (incidentally) what makes replication traffic
/// cross-shard and the mailbox path non-vacuous.
///
/// # Examples
///
/// ```
/// use dmem_cluster::spread_replicas;
/// use dmem_sim::shard::ShardMap;
///
/// let map = ShardMap::grouped(64, 4);
/// let replicas = spread_replicas(0xfeed, 3, 64, 2, &map);
/// assert_eq!(replicas.len(), 2);
/// assert!(!replicas.contains(&3), "never places on the faulting host");
/// // Two replicas, two distinct shards.
/// assert_ne!(map.shard_of(replicas[0]), map.shard_of(replicas[1]));
/// ```
pub fn spread_replicas(
    page: u64,
    avoid_host: usize,
    hosts: usize,
    count: usize,
    map: &ShardMap,
) -> Vec<usize> {
    assert!(hosts > 1, "need at least two hosts to place remotely");
    let count = count.min(hosts - 1);
    let mut picked: Vec<usize> = Vec::with_capacity(count);
    let mut used_shards: Vec<ShardId> = vec![map.shard_of(avoid_host)];
    // First pass requires an unused shard; once shards run out, any
    // distinct host qualifies. Probing is derived from the page id only.
    for pass in 0..2 {
        let mut probe = 0u64;
        while picked.len() < count {
            let h = (splitmix64(page.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ probe) % hosts as u64)
                as usize;
            probe += 1;
            if probe > 8 * hosts as u64 {
                break; // give up this pass; the next one relaxes the rule
            }
            if h == avoid_host || picked.contains(&h) {
                continue;
            }
            let shard = map.shard_of(h);
            if pass == 0 && used_shards.contains(&shard) {
                continue;
            }
            used_shards.push(shard);
            picked.push(h);
        }
        if picked.len() == count {
            break;
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::{FailureInjector, SimClock};
    use dmem_types::ByteSize;
    use std::collections::HashMap;
    use std::collections::HashSet;

    fn membership(n: u32) -> ClusterMembership {
        let failures = FailureInjector::new(SimClock::new());
        ClusterMembership::new((0..n).map(NodeId::new).collect(), failures)
    }

    fn placer(strategy: PlacementStrategy, m: &ClusterMembership) -> Placer {
        Placer::new(strategy, m.clone(), DetRng::new(42))
    }

    fn candidates(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn picks_are_distinct() {
        let m = membership(8);
        for strategy in [
            PlacementStrategy::Random,
            PlacementStrategy::RoundRobin,
            PlacementStrategy::WeightedRoundRobin,
            PlacementStrategy::PowerOfTwoChoices,
        ] {
            let p = placer(strategy, &m);
            for _ in 0..20 {
                let picked = p.pick(&candidates(8), 3).unwrap();
                let set: HashSet<_> = picked.iter().collect();
                assert_eq!(set.len(), 3, "{strategy}: duplicates in {picked:?}");
            }
        }
    }

    #[test]
    fn spread_replicas_is_pure_distinct_and_shard_diverse() {
        let map = ShardMap::grouped(64, 8);
        for page in 0..500u64 {
            let owner = (page % 64) as usize;
            let a = spread_replicas(page, owner, 64, 2, &map);
            assert_eq!(a, spread_replicas(page, owner, 64, 2, &map), "must be pure");
            assert_eq!(a.len(), 2);
            assert!(!a.contains(&owner));
            assert_ne!(a[0], a[1]);
            // 8 shards, 3 distinct hosts involved: all shards distinct.
            let shards: HashSet<_> = a
                .iter()
                .map(|&h| map.shard_of(h))
                .chain([map.shard_of(owner)])
                .collect();
            assert_eq!(shards.len(), 3, "page {page}: replicas must spread shards");
        }
    }

    #[test]
    fn spread_replicas_relaxes_when_shards_run_out() {
        // 4 hosts on 2 shards, 3 replicas + owner = all hosts: the
        // distinct-shard rule cannot hold, but placement must still fill.
        let map = ShardMap::grouped(4, 2);
        let picked = spread_replicas(1, 0, 4, 3, &map);
        assert_eq!(picked.len(), 3);
        let set: HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 3);
        assert!(!picked.contains(&0));
    }

    #[test]
    fn insufficient_candidates_rejected() {
        let m = membership(2);
        let p = placer(PlacementStrategy::Random, &m);
        assert!(matches!(
            p.pick(&candidates(2), 3),
            Err(DmemError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn round_robin_cycles() {
        let m = membership(4);
        let p = placer(PlacementStrategy::RoundRobin, &m);
        let firsts: Vec<NodeId> = (0..4)
            .map(|_| p.pick(&candidates(4), 1).unwrap()[0])
            .collect();
        let unique: HashSet<_> = firsts.iter().collect();
        assert_eq!(unique.len(), 4, "RR must visit all nodes: {firsts:?}");
    }

    #[test]
    fn power_of_two_prefers_free_nodes() {
        let m = membership(4);
        // Node 3 has far more free memory than the rest.
        m.advertise_free(NodeId::new(3), ByteSize::from_gib(1));
        for n in 0..3 {
            m.advertise_free(NodeId::new(n), ByteSize::from_mib(1));
        }
        let p = placer(PlacementStrategy::PowerOfTwoChoices, &m);
        let mut wins = 0;
        const TRIALS: usize = 200;
        for _ in 0..TRIALS {
            if p.pick(&candidates(4), 1).unwrap()[0] == NodeId::new(3) {
                wins += 1;
            }
        }
        // d=2 sampling: node 3 is picked whenever sampled ≈ 7/16 ≈ 44%.
        assert!(
            wins > TRIALS / 4,
            "power-of-two picked the big node only {wins}/{TRIALS} times"
        );
    }

    #[test]
    fn weighted_rr_skews_toward_free() {
        let m = membership(2);
        m.advertise_free(NodeId::new(0), ByteSize::from_mib(9));
        m.advertise_free(NodeId::new(1), ByteSize::from_mib(1));
        let p = placer(PlacementStrategy::WeightedRoundRobin, &m);
        let mut zero_wins = 0;
        const TRIALS: usize = 300;
        for _ in 0..TRIALS {
            if p.pick(&candidates(2), 1).unwrap()[0] == NodeId::new(0) {
                zero_wins += 1;
            }
        }
        let share = zero_wins as f64 / TRIALS as f64;
        assert!(
            share > 0.75,
            "expected ~90% of picks on the 9x node, got {share:.2}"
        );
    }

    /// Replays a skewed allocation stream (a heavy tail of large
    /// allocations) against `strategy` with closed-loop feedback: every
    /// placement debits the chosen node's advertised free memory, exactly
    /// like the advertise maintenance task would. Returns the maximum
    /// bytes loaded onto any single node.
    fn max_load_under_skew(strategy: PlacementStrategy, seed: u64) -> u64 {
        const NODES: u32 = 8;
        let capacity = ByteSize::from_mib(64).as_u64();
        let m = membership(NODES);
        for n in 0..NODES {
            m.advertise_free(NodeId::new(n), ByteSize::from(capacity));
        }
        let p = Placer::new(strategy, m.clone(), DetRng::new(seed));
        let mut stream = DetRng::new(seed ^ 0x5EED);
        let mut load = vec![0u64; NODES as usize];
        for _ in 0..600 {
            // 10% of allocations are 64x larger: the skew that load-aware
            // policies exist to absorb (paper §IV-E).
            let size: u64 = if stream.chance(0.1) { 1 << 20 } else { 16 << 10 };
            let node = p.pick(&candidates(NODES), 1).unwrap()[0];
            load[node.index() as usize] += size;
            m.advertise_free(
                node,
                ByteSize::from(capacity.saturating_sub(load[node.index() as usize])),
            );
        }
        load.into_iter().max().unwrap()
    }

    #[test]
    fn power_of_two_beats_random_on_max_load() {
        // Deterministic seeds: the comparison must hold seed-for-seed,
        // not just on average, for several independent streams.
        for seed in [3u64, 17, 29] {
            let p2c = max_load_under_skew(PlacementStrategy::PowerOfTwoChoices, seed);
            let random = max_load_under_skew(PlacementStrategy::Random, seed);
            assert!(
                p2c < random,
                "seed {seed}: power-of-two max load {p2c} not below random {random}"
            );
        }
    }

    #[test]
    fn weighted_rr_share_tracks_advertised_ratio() {
        // Three nodes advertising 6:3:1 free memory should receive picks
        // in roughly that proportion (no feedback: weights held fixed).
        let m = membership(3);
        m.advertise_free(NodeId::new(0), ByteSize::from_mib(6));
        m.advertise_free(NodeId::new(1), ByteSize::from_mib(3));
        m.advertise_free(NodeId::new(2), ByteSize::from_mib(1));
        let p = placer(PlacementStrategy::WeightedRoundRobin, &m);
        let mut counts = [0usize; 3];
        const TRIALS: usize = 1000;
        for _ in 0..TRIALS {
            counts[p.pick(&candidates(3), 1).unwrap()[0].index() as usize] += 1;
        }
        let share = |i: usize| counts[i] as f64 / TRIALS as f64;
        assert!(
            (0.5..0.7).contains(&share(0)),
            "6/10 node got {:.2}", share(0)
        );
        assert!(
            (0.2..0.4).contains(&share(1)),
            "3/10 node got {:.2}", share(1)
        );
        assert!(
            (0.05..0.15).contains(&share(2)),
            "1/10 node got {:.2}", share(2)
        );
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
    }

    #[test]
    fn random_is_roughly_uniform() {
        let m = membership(4);
        let p = placer(PlacementStrategy::Random, &m);
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        const TRIALS: usize = 400;
        for _ in 0..TRIALS {
            *counts.entry(p.pick(&candidates(4), 1).unwrap()[0]).or_default() += 1;
        }
        for (&node, &count) in &counts {
            let share = count as f64 / TRIALS as f64;
            assert!(
                (0.12..0.40).contains(&share),
                "{node} got share {share:.2}, expected ~0.25"
            );
        }
    }
}
