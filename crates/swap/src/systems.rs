//! System factory: assemble any of the paper's swap systems at a chosen
//! scale and drive it with a workload.
//!
//! Every figure-reproducing bench goes through this module so all systems
//! run against identical clusters, traces and cost models — only the swap
//! system itself differs.

use crate::disk::LinuxDiskSwap;
use crate::engine::{EngineConfig, EngineStats, PageSource, PagingEngine};
use crate::fastswap::{FastSwapBackend, FastSwapMode};
use crate::remote_paging::{InfiniswapBackend, NbdxBackend};
use crate::zswap_backend::ZswapBackend;
use dmem_cluster::{ClusterMembership, RemoteStore};
use dmem_core::{DiskTier, DisaggregatedMemory};
use dmem_net::Fabric;
use dmem_sim::{CostModel, FailureInjector, SimClock, SimDuration};
use dmem_types::{
    ByteSize, ClusterConfig, CompressionMode, DistributionRatio, DmemError, DmemResult,
    DonationPolicy, NodeConfig, NodeId, ServerConfig, SwapInMode,
};
use dmem_workloads::{catalog, KvWorkload, PageAccess, TraceConfig};
use std::sync::Arc;

/// Which system to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SystemKind {
    /// Linux disk swapping (the paper's worst baseline).
    Linux,
    /// zswap compressed RAM cache in front of the disk.
    Zswap,
    /// NBDX remote block device.
    Nbdx,
    /// Infiniswap remote paging.
    Infiniswap,
    /// FastSwap with explicit knobs.
    FastSwap {
        /// Node/cluster traffic split (Fig. 8).
        ratio: DistributionRatio,
        /// Page compression mode (Figs. 3-5).
        compression: CompressionMode,
        /// Proactive batch swap-in on/off (Figs. 6, 9).
        pbs: bool,
    },
    /// FastSwap's compression applied to a plain disk swap device
    /// (Fig. 4(b)).
    FastSwapDiskCompressed,
}

impl SystemKind {
    /// FastSwap as evaluated by default: auto-tiered, 4-granularity
    /// compression, PBS on.
    pub fn fastswap_default() -> Self {
        SystemKind::FastSwap {
            ratio: DistributionRatio::FS_SM,
            compression: CompressionMode::FourGranularity,
            pbs: true,
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            SystemKind::Linux => "Linux".into(),
            SystemKind::Zswap => "zswap".into(),
            SystemKind::Nbdx => "NBDX".into(),
            SystemKind::Infiniswap => "Infiniswap".into(),
            SystemKind::FastSwap { ratio, pbs, .. } => {
                if *pbs {
                    format!("FastSwap({ratio})")
                } else {
                    format!("FastSwap({ratio}, w/o PBS)")
                }
            }
            SystemKind::FastSwapDiskCompressed => "FastSwap-disk".into(),
        }
    }
}

/// Simulation scale shared by all systems of one experiment.
#[derive(Debug, Clone)]
pub struct SwapScale {
    /// Working-set size in pages.
    pub working_set_pages: u64,
    /// Fraction of the working set that fits in memory (the paper's
    /// 75%/50% configurations).
    pub memory_fraction: f64,
    /// Cluster size for the remote systems.
    pub nodes: u32,
    /// Per-node remote receive pool.
    pub remote_pool: ByteSize,
    /// Donation fraction funding the node shared pool (FastSwap).
    pub shared_donation: f64,
    /// Application compute charged per page access.
    pub compute_per_access: SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl SwapScale {
    /// A fast test-sized scale: 512-page working set at 50%.
    pub fn small() -> Self {
        SwapScale {
            working_set_pages: 512,
            memory_fraction: 0.5,
            nodes: 4,
            remote_pool: ByteSize::from_mib(4),
            shared_donation: 0.40,
            compute_per_access: SimDuration::from_micros(6),
            seed: 0xFA57,
        }
    }

    /// The bench-sized scale used by the figure harness: an 8 MiB
    /// working set (2048 pages) standing in for the paper's 25-30 GB.
    pub fn bench() -> Self {
        SwapScale {
            working_set_pages: 2048,
            memory_fraction: 0.5,
            nodes: 8,
            remote_pool: ByteSize::from_mib(8),
            shared_donation: 0.40,
            compute_per_access: SimDuration::from_micros(6),
            seed: 0xFA57,
        }
    }

    /// Resident frames for the configured memory fraction.
    pub fn frames(&self) -> usize {
        ((self.working_set_pages as f64) * self.memory_fraction).max(1.0) as usize
    }

    /// This scale with a different memory fraction.
    pub fn with_fraction(&self, fraction: f64) -> Self {
        SwapScale {
            memory_fraction: fraction,
            ..self.clone()
        }
    }
}

/// Outcome of one workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// System label.
    pub system: String,
    /// Workload name.
    pub workload: String,
    /// Virtual completion time.
    pub completion: SimDuration,
    /// Engine counters.
    pub stats: EngineStats,
}

fn remote_env(scale: &SwapScale) -> DmemResult<(SimClock, Arc<RemoteStore>, DiskTier)> {
    let clock = SimClock::new();
    let cost = CostModel::paper_default();
    let failures = FailureInjector::new(clock.clone());
    let fabric = Fabric::new(clock.clone(), cost, failures.clone());
    let nodes: Vec<NodeId> = (0..scale.nodes).map(NodeId::new).collect();
    let membership = ClusterMembership::new(nodes, failures);
    let store = Arc::new(RemoteStore::new(fabric, membership, scale.remote_pool)?);
    let disk = DiskTier::new(clock.clone(), cost);
    Ok((clock, store, disk))
}

fn fastswap_cluster(
    scale: &SwapScale,
    compression: CompressionMode,
) -> DmemResult<Arc<DisaggregatedMemory>> {
    let server_memory = ByteSize::new(scale.frames() as u64 * 4096).max(ByteSize::from_kib(64));
    let servers_per_node = 2usize;
    let send_pool = ByteSize::from_mib(2);
    let dram = server_memory * servers_per_node as u64
        + send_pool
        + scale.remote_pool
        + ByteSize::from_mib(1);
    let config = ClusterConfig {
        nodes: scale.nodes as usize,
        servers_per_node,
        node: NodeConfig {
            dram,
            slab_size: ByteSize::from_kib(256),
            send_pool,
            recv_pool: scale.remote_pool,
            nvm_pool: ByteSize::ZERO,
        },
        server: ServerConfig {
            memory: server_memory,
            donation: DonationPolicy::fixed(scale.shared_donation),
        },
        group_size: scale.nodes as usize,
        replication: dmem_types::ReplicationFactor::TRIPLE,
        placement: dmem_types::PlacementStrategy::PowerOfTwoChoices,
        compression,
        cxl: dmem_types::CxlPoolConfig::DISABLED,
        seed: scale.seed,
    };
    Ok(Arc::new(DisaggregatedMemory::new(config)?))
}

/// Builds a ready-to-run paging engine for `kind` at `scale`, with page
/// contents compressing around `(compress_mean, compress_spread)`.
///
/// # Errors
///
/// Propagates cluster construction failures.
pub fn build_system_with_pages(
    kind: SystemKind,
    scale: &SwapScale,
    compress_mean: f64,
    compress_spread: f64,
) -> DmemResult<PagingEngine> {
    let frames = scale.frames();
    let source = PageSource::new(compress_mean, compress_spread, scale.seed);
    let base = EngineConfig {
        compute_per_access: scale.compute_per_access,
        ..EngineConfig::demand(frames)
    };
    match kind {
        SystemKind::Linux => {
            let clock = SimClock::new();
            let server = dmem_types::ServerId::new(NodeId::new(0), 0);
            let backend = LinuxDiskSwap::new(server, clock.clone(), CostModel::paper_default());
            // The kernel clusters swap writes and reads ahead
            // vm.page-cluster = 3 → 8 pages per swapin; modelling this
            // keeps the Linux baseline honest (the paper's 24-85x gaps
            // are against a tuned kernel, not naive per-page I/O).
            let config = EngineConfig {
                swap_out_window: 8,
                swap_in: SwapInMode::ProactiveBatch { window: 8 },
                ..base
            };
            Ok(PagingEngine::new(config, clock, Box::new(backend), source))
        }
        SystemKind::Zswap => {
            let clock = SimClock::new();
            let server = dmem_types::ServerId::new(NodeId::new(0), 0);
            // zswap pool sized at 20% of the working set, as commonly
            // configured.
            let pool_frames = (scale.working_set_pages / 5).max(2) as usize;
            let backend =
                ZswapBackend::new(server, pool_frames, clock.clone(), CostModel::paper_default());
            Ok(PagingEngine::new(base, clock, Box::new(backend), source))
        }
        SystemKind::Nbdx => {
            let (clock, store, disk) = remote_env(scale)?;
            let server = dmem_types::ServerId::new(NodeId::new(0), 0);
            let backend = NbdxBackend::new(server, store, NodeId::new(1), disk);
            Ok(PagingEngine::new(base, clock, Box::new(backend), source))
        }
        SystemKind::Infiniswap => {
            let (clock, store, disk) = remote_env(scale)?;
            let server = dmem_types::ServerId::new(NodeId::new(0), 0);
            let backend = InfiniswapBackend::new(server, store, disk, scale.seed);
            Ok(PagingEngine::new(base, clock, Box::new(backend), source))
        }
        SystemKind::FastSwap {
            ratio,
            compression,
            pbs,
        } => {
            let dm = fastswap_cluster(scale, compression)?;
            let server = dm.servers()[0];
            let clock = dm.clock().clone();
            let backend = FastSwapBackend::new(dm, server, FastSwapMode::Hybrid(ratio));
            let config = EngineConfig {
                swap_out_window: 8,
                swap_in: if pbs {
                    SwapInMode::ProactiveBatch { window: 8 }
                } else {
                    SwapInMode::Demand
                },
                // FastSwap hooks the swap path frontswap-style: faults are
                // served synchronously without the block layer's bio
                // submission and io_schedule sleep/wake, so the per-fault
                // kernel cost is a fraction of the block-device systems'.
                fault_overhead: SimDuration::from_micros(2),
                ..base
            };
            Ok(PagingEngine::new(config, clock, Box::new(backend), source))
        }
        SystemKind::FastSwapDiskCompressed => {
            let dm = fastswap_cluster(scale, CompressionMode::FourGranularity)?;
            let server = dm.servers()[0];
            let clock = dm.clock().clone();
            let backend = FastSwapBackend::new(dm, server, FastSwapMode::DiskCompressed);
            let config = EngineConfig {
                swap_out_window: 8,
                swap_in: SwapInMode::ProactiveBatch { window: 8 },
                ..base
            };
            Ok(PagingEngine::new(config, clock, Box::new(backend), source))
        }
    }
}

/// Builds an engine with the default mid-range page compressibility.
///
/// # Errors
///
/// See [`build_system_with_pages`].
pub fn build_system(kind: SystemKind, scale: &SwapScale) -> DmemResult<PagingEngine> {
    build_system_with_pages(kind, scale, 2.8, 0.8)
}

/// Runs one of the Table-3 ML workloads through `kind` and returns the
/// completion-time result (the Fig. 5-7 measurement).
///
/// # Errors
///
/// Returns [`DmemError::InvalidConfig`] for unknown workloads plus any
/// construction failure.
pub fn run_ml_workload(kind: SystemKind, workload: &str, scale: &SwapScale) -> DmemResult<RunResult> {
    let profile = catalog::by_name(workload).ok_or_else(|| DmemError::InvalidConfig {
        reason: format!("unknown workload {workload}"),
    })?;
    let mut engine = build_system_with_pages(
        kind,
        scale,
        profile.compress_mean,
        profile.compress_spread,
    )?;
    let trace = TraceConfig::scaled_from(profile, scale.working_set_pages).generate(scale.seed);
    let (stats, completion) = engine.run(trace)?;
    Ok(RunResult {
        system: kind.label(),
        workload: workload.to_owned(),
        completion,
        stats,
    })
}

/// Runs a key-value workload for `ops` operations and returns
/// `(throughput_ops_per_sec, result)` — the Fig. 8 measurement. The store
/// starts under full memory pressure (working set swapped out).
///
/// # Errors
///
/// Same as [`run_ml_workload`].
pub fn run_kv_throughput(
    kind: SystemKind,
    workload: &str,
    scale: &SwapScale,
    ops: usize,
) -> DmemResult<(f64, RunResult)> {
    let profile = catalog::by_name(workload).ok_or_else(|| DmemError::InvalidConfig {
        reason: format!("unknown workload {workload}"),
    })?;
    // A KV store op costs ~1 us of CPU, far less than the ML workloads'
    // per-page compute.
    let mut scale = scale.clone();
    scale.compute_per_access = SimDuration::from_micros(1);
    let scale = &scale;
    let mut engine = build_system_with_pages(
        kind,
        scale,
        profile.compress_mean,
        profile.compress_spread,
    )?;
    engine.preload_swapped(scale.working_set_pages)?;
    let mut kv = KvWorkload::from_profile(&profile, scale.working_set_pages, scale.seed);
    let trace = std::iter::from_fn(move || {
        let op = kv.next_op();
        Some(PageAccess {
            page: dmem_types::PageId::new(op.key()),
            write: op.is_write(),
        })
    })
    .take(ops);
    let start = engine.clock().now();
    let (stats, _) = engine.run(trace)?;
    let elapsed = engine.clock().now() - start;
    let throughput = ops as f64 / elapsed.as_secs_f64().max(1e-12);
    Ok((
        throughput,
        RunResult {
            system: kind.label(),
            workload: workload.to_owned(),
            completion: elapsed,
            stats,
        },
    ))
}

/// Runs a key-value workload against a cold (fully swapped-out) store for
/// `horizon` of virtual time, returning ops completed per virtual second —
/// the Fig. 9 recovery timeline.
///
/// # Errors
///
/// Same as [`run_ml_workload`].
pub fn run_kv_timeline(
    kind: SystemKind,
    workload: &str,
    scale: &SwapScale,
    horizon: SimDuration,
) -> DmemResult<Vec<u64>> {
    let profile = catalog::by_name(workload).ok_or_else(|| DmemError::InvalidConfig {
        reason: format!("unknown workload {workload}"),
    })?;
    let mut scale = scale.clone();
    scale.compute_per_access = SimDuration::from_micros(1);
    let scale = &scale;
    let mut engine = build_system_with_pages(
        kind,
        scale,
        profile.compress_mean,
        profile.compress_spread,
    )?;
    engine.preload_swapped(scale.working_set_pages)?;
    let mut kv = KvWorkload::from_profile(&profile, scale.working_set_pages, scale.seed);
    let trace = std::iter::from_fn(move || {
        let op = kv.next_op();
        Some(PageAccess {
            page: dmem_types::PageId::new(op.key()),
            write: op.is_write(),
        })
    });
    let (_, series) = engine.run_with_timeline(trace, horizon)?;
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_build_and_run() {
        let scale = SwapScale::small();
        for kind in [
            SystemKind::Linux,
            SystemKind::Zswap,
            SystemKind::Nbdx,
            SystemKind::Infiniswap,
            SystemKind::fastswap_default(),
            SystemKind::FastSwapDiskCompressed,
        ] {
            let result = run_ml_workload(kind, "KMeans", &scale).unwrap();
            assert!(result.completion > SimDuration::ZERO, "{}", result.system);
            assert!(result.stats.accesses > 0);
        }
    }

    #[test]
    fn paper_ordering_fastswap_beats_infiniswap_beats_linux() {
        let scale = SwapScale::small();
        let linux = run_ml_workload(SystemKind::Linux, "LogisticRegression", &scale).unwrap();
        let inf = run_ml_workload(SystemKind::Infiniswap, "LogisticRegression", &scale).unwrap();
        let fast =
            run_ml_workload(SystemKind::fastswap_default(), "LogisticRegression", &scale).unwrap();
        assert!(
            fast.completion < inf.completion,
            "FastSwap {} !< Infiniswap {}",
            fast.completion,
            inf.completion
        );
        assert!(
            inf.completion < linux.completion,
            "Infiniswap {} !< Linux {}",
            inf.completion,
            linux.completion
        );
        // And the gap over Linux is large (paper: tens of x).
        let speedup =
            linux.completion.as_nanos() as f64 / fast.completion.as_nanos() as f64;
        assert!(speedup > 5.0, "FastSwap speedup over Linux only {speedup:.1}x");
    }

    #[test]
    fn more_memory_means_faster_completion() {
        let scale50 = SwapScale::small();
        let scale75 = scale50.with_fraction(0.75);
        let at50 = run_ml_workload(SystemKind::fastswap_default(), "SVM", &scale50).unwrap();
        let at75 = run_ml_workload(SystemKind::fastswap_default(), "SVM", &scale75).unwrap();
        assert!(
            at75.completion < at50.completion,
            "75% config must beat 50% config"
        );
    }

    #[test]
    fn pbs_accelerates_recovery_sweep() {
        // PBS's payoff is the Fig. 6/9 scenario: a working set parked in
        // remote memory being faulted back in with strong sequentiality
        // (recovery after pressure). One batched fetch replaces a window
        // of faults, control round trips and reads.
        let scale = SwapScale::small();
        let remote = |pbs| SystemKind::FastSwap {
            ratio: DistributionRatio::FS_RDMA,
            compression: CompressionMode::FourGranularity,
            pbs,
        };
        let sweep = |pbs: bool| {
            let mut engine = build_system(remote(pbs), &scale).unwrap();
            engine.preload_swapped(scale.working_set_pages).unwrap();
            let t0 = engine.clock().now();
            for pfn in 0..scale.frames() as u64 {
                engine.access(pfn, false).unwrap();
            }
            engine.clock().now() - t0
        };
        let with_pbs = sweep(true);
        let without = sweep(false);
        let speedup = without.as_nanos() as f64 / with_pbs.as_nanos() as f64;
        assert!(
            speedup > 1.4,
            "PBS recovery {with_pbs} only {speedup:.2}x faster than demand {without}"
        );
    }

    #[test]
    fn kv_throughput_ranks_systems() {
        let scale = SwapScale::small();
        let (fs, _) = run_kv_throughput(SystemKind::fastswap_default(), "Memcached", &scale, 3000)
            .unwrap();
        let (linux, _) =
            run_kv_throughput(SystemKind::Linux, "Memcached", &scale, 3000).unwrap();
        assert!(
            fs > linux * 5.0,
            "FastSwap KV throughput {fs:.0} not far above Linux {linux:.0}"
        );
    }

    #[test]
    fn timeline_shows_recovery() {
        let scale = SwapScale::small();
        let series = run_kv_timeline(
            SystemKind::fastswap_default(),
            "Memcached",
            &scale,
            SimDuration::from_secs(5),
        )
        .unwrap();
        assert_eq!(series.len(), 5);
        assert!(series.iter().sum::<u64>() > 0);
    }

    #[test]
    fn unknown_workload_rejected() {
        assert!(run_ml_workload(SystemKind::Linux, "Nope", &SwapScale::small()).is_err());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SystemKind::Linux.label(), "Linux");
        assert_eq!(
            SystemKind::FastSwap {
                ratio: DistributionRatio::FS_7_3,
                compression: CompressionMode::FourGranularity,
                pbs: true
            }
            .label(),
            "FastSwap(FS-7:3)"
        );
    }
}
