//! O(1) data structures for the paging hot path.
//!
//! The engine's original bookkeeping paid O(log n) per page touch: a
//! `BTreeMap<tick, pfn>` recency index plus a `BTreeSet<u64>` of
//! backend-resident pages. Every access is a touch and every fault scans
//! residency, so those logs were the single largest constant in the fault
//! loop. This module replaces them:
//!
//! * [`FrameLru`] — true-LRU over resident frames as an intrusive doubly
//!   linked list threaded through a slab of entries, with a
//!   `HashMap<pfn, slot>` index. Touch, insert, and evict are all O(1),
//!   and the eviction order is *bit-identical* to the tick-based
//!   structure (verified by a differential test below): the list head is
//!   always the least recently touched page.
//! * [`PfnSet`] — backend residency as a growable bitset. Membership,
//!   insert and remove are O(1); ordered ascending iteration (which the
//!   proactive-restore scan relies on for its lowest-address-first
//!   policy) walks set bits from block zero, exactly matching the old
//!   `BTreeSet` iteration order. Page frame numbers are dense small
//!   integers by construction (trace generators draw them from the
//!   working set), which is what makes a bitset the right shape.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// Per-frame metadata carried by the LRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameFlags {
    /// The page diverged from its backend copy (needs writeback).
    pub dirty: bool,
    /// The page arrived by prefetch and has not been demanded yet.
    pub prefetched: bool,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    pfn: u64,
    prev: usize,
    next: usize,
    dirty: bool,
    prefetched: bool,
}

/// True-LRU over resident page frames: O(1) touch, insert, evict.
///
/// The doubly linked list runs from `head` (least recently used — the
/// next eviction victim) to `tail` (most recently used). Slots live in a
/// slab (`Vec`) and are recycled through a free list, so a warmed-up
/// engine never allocates for LRU maintenance.
#[derive(Debug, Default)]
pub struct FrameLru {
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    index: HashMap<u64, usize>,
}

impl FrameLru {
    /// An empty LRU with room for `frames` entries before reallocation.
    pub fn with_capacity(frames: usize) -> Self {
        FrameLru {
            slots: Vec::with_capacity(frames),
            free: Vec::with_capacity(frames),
            head: NIL,
            tail: NIL,
            index: HashMap::with_capacity(frames),
        }
    }

    /// Resident pages.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no page is resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `pfn` is resident.
    pub fn contains(&self, pfn: u64) -> bool {
        self.index.contains_key(&pfn)
    }

    /// The flags of a resident page.
    pub fn flags(&self, pfn: u64) -> Option<FrameFlags> {
        self.index.get(&pfn).map(|&slot| FrameFlags {
            dirty: self.slots[slot].dirty,
            prefetched: self.slots[slot].prefetched,
        })
    }

    /// Marks a resident page dirty (the writeback-hit path re-dirties a
    /// page pulled back from the write-behind buffer).
    pub fn set_dirty(&mut self, pfn: u64) {
        if let Some(&slot) = self.index.get(&pfn) {
            self.slots[slot].dirty = true;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let Slot { prev, next, .. } = self.slots[slot];
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_mru(&mut self, slot: usize) {
        self.slots[slot].prev = self.tail;
        self.slots[slot].next = NIL;
        if self.tail != NIL {
            self.slots[self.tail].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
    }

    /// Records an access: moves `pfn` to most-recently-used (inserting it
    /// if absent), ORs `write` into its dirty bit, and sets its
    /// prefetched flag to `prefetched` — the exact semantics of the old
    /// tick-based touch. The already-MRU fast path skips the unlink/link
    /// pair entirely.
    pub fn touch(&mut self, pfn: u64, write: bool, prefetched: bool) {
        if let Some(&slot) = self.index.get(&pfn) {
            let s = &mut self.slots[slot];
            s.dirty |= write;
            s.prefetched = prefetched;
            if self.tail == slot {
                // Already MRU: flag update only, no list surgery.
                return;
            }
            self.unlink(slot);
            self.push_mru(slot);
        } else {
            let slot = match self.free.pop() {
                Some(slot) => {
                    self.slots[slot] = Slot {
                        pfn,
                        prev: NIL,
                        next: NIL,
                        dirty: write,
                        prefetched,
                    };
                    slot
                }
                None => {
                    self.slots.push(Slot {
                        pfn,
                        prev: NIL,
                        next: NIL,
                        dirty: write,
                        prefetched,
                    });
                    self.slots.len() - 1
                }
            };
            self.index.insert(pfn, slot);
            self.push_mru(slot);
        }
    }

    /// Removes and returns the least recently used page and its flags.
    pub fn pop_lru(&mut self) -> Option<(u64, FrameFlags)> {
        let slot = self.head;
        if slot == NIL {
            return None;
        }
        let s = self.slots[slot];
        self.unlink(slot);
        self.index.remove(&s.pfn);
        self.free.push(slot);
        Some((
            s.pfn,
            FrameFlags {
                dirty: s.dirty,
                prefetched: s.prefetched,
            },
        ))
    }
}

/// A growable bitset over page frame numbers with ordered iteration.
#[derive(Debug, Default)]
pub struct PfnSet {
    blocks: Vec<u64>,
    len: usize,
}

impl PfnSet {
    /// An empty set.
    pub fn new() -> Self {
        PfnSet::default()
    }

    /// Members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no pfn is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `pfn` is in the set.
    pub fn contains(&self, pfn: u64) -> bool {
        let block = (pfn / 64) as usize;
        self.blocks
            .get(block)
            .is_some_and(|b| b & (1u64 << (pfn % 64)) != 0)
    }

    /// Inserts `pfn`; returns `true` if it was absent.
    pub fn insert(&mut self, pfn: u64) -> bool {
        let block = (pfn / 64) as usize;
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let bit = 1u64 << (pfn % 64);
        let fresh = self.blocks[block] & bit == 0;
        self.blocks[block] |= bit;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `pfn`; returns `true` if it was present.
    pub fn remove(&mut self, pfn: u64) -> bool {
        let block = (pfn / 64) as usize;
        let Some(b) = self.blocks.get_mut(block) else {
            return false;
        };
        let bit = 1u64 << (pfn % 64);
        let present = *b & bit != 0;
        *b &= !bit;
        self.len -= usize::from(present);
        present
    }

    /// Iterates members in ascending order (the old `BTreeSet` order).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, &bits)| bits != 0)
            .flat_map(|(block, &bits)| {
                let base = block as u64 * 64;
                BitIter { bits, base }
            })
    }
}

struct BitIter {
    bits: u64,
    base: u64,
}

impl Iterator for BitIter {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        if self.bits == 0 {
            return None;
        }
        let tz = self.bits.trailing_zeros() as u64;
        self.bits &= self.bits - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::DetRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// The engine's original tick-based structure, kept verbatim as the
    /// reference implementation for the differential test.
    #[derive(Default)]
    struct TickLru {
        resident: HashMap<u64, (u64, bool, bool)>, // pfn -> (tick, dirty, prefetched)
        lru: BTreeMap<u64, u64>,                   // tick -> pfn
        tick: u64,
    }

    impl TickLru {
        fn touch(&mut self, pfn: u64, write: bool, prefetched: bool) {
            self.tick += 1;
            if let Some(&(tick, _, _)) = self.resident.get(&pfn) {
                self.lru.remove(&tick);
            }
            let dirty = write || self.resident.get(&pfn).map(|r| r.1).unwrap_or(false);
            self.resident.insert(pfn, (self.tick, dirty, prefetched));
            self.lru.insert(self.tick, pfn);
        }

        fn pop_lru(&mut self) -> Option<(u64, FrameFlags)> {
            let (&tick, &pfn) = self.lru.iter().next()?;
            self.lru.remove(&tick);
            let (_, dirty, prefetched) = self.resident.remove(&pfn).expect("victim resident");
            Some((pfn, FrameFlags { dirty, prefetched }))
        }
    }

    #[test]
    fn differential_10k_accesses_identical_victim_sequence() {
        let mut rng = DetRng::new(0x1b0);
        let mut new = FrameLru::with_capacity(64);
        let mut old = TickLru::default();
        let mut victims_new = Vec::new();
        let mut victims_old = Vec::new();
        for _ in 0..10_000 {
            if new.len() > 48 || (new.len() > 0 && rng.chance(0.3)) {
                victims_new.push(new.pop_lru());
                victims_old.push(old.pop_lru());
            } else {
                let pfn = rng.below(96) as u64;
                let write = rng.chance(0.4);
                let prefetched = rng.chance(0.1);
                new.touch(pfn, write, prefetched);
                old.touch(pfn, write, prefetched);
            }
            assert_eq!(new.len(), old.resident.len());
        }
        // Drain the rest so the full eviction order is compared.
        while let Some(v) = new.pop_lru() {
            victims_new.push(Some(v));
            victims_old.push(old.pop_lru());
        }
        assert_eq!(
            victims_new, victims_old,
            "O(1) LRU must evict in the exact order of the tick-based structure"
        );
    }

    #[test]
    fn touch_moves_to_mru() {
        let mut lru = FrameLru::with_capacity(4);
        lru.touch(1, false, false);
        lru.touch(2, false, false);
        lru.touch(1, false, false); // 2 is now LRU
        assert_eq!(lru.pop_lru().unwrap().0, 2);
        assert_eq!(lru.pop_lru().unwrap().0, 1);
        assert!(lru.pop_lru().is_none());
    }

    #[test]
    fn mru_fast_path_keeps_flags_fresh() {
        let mut lru = FrameLru::with_capacity(4);
        lru.touch(1, false, true);
        lru.touch(1, true, false); // MRU fast path: still ORs dirty, clears prefetched
        let flags = lru.flags(1).unwrap();
        assert!(flags.dirty);
        assert!(!flags.prefetched);
        lru.touch(1, false, false); // dirty stays sticky
        assert!(lru.flags(1).unwrap().dirty);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut lru = FrameLru::with_capacity(2);
        for round in 0..100u64 {
            lru.touch(round, round % 2 == 0, false);
            if lru.len() > 2 {
                lru.pop_lru();
            }
        }
        assert!(
            lru.slots.len() <= 4,
            "slab must recycle, not grow: {} slots",
            lru.slots.len()
        );
    }

    #[test]
    fn pfn_set_matches_btreeset() {
        let mut rng = DetRng::new(7);
        let mut set = PfnSet::new();
        let mut reference = BTreeSet::new();
        for _ in 0..5_000 {
            let pfn = rng.below(512) as u64;
            if rng.chance(0.4) {
                assert_eq!(set.remove(pfn), reference.remove(&pfn));
            } else {
                assert_eq!(set.insert(pfn), reference.insert(pfn));
            }
            assert_eq!(set.len(), reference.len());
        }
        let scan: Vec<u64> = set.iter().collect();
        let want: Vec<u64> = reference.iter().copied().collect();
        assert_eq!(scan, want, "ordered iteration must match BTreeSet");
        for pfn in 0..512 {
            assert_eq!(set.contains(pfn), reference.contains(&pfn));
        }
    }

    #[test]
    fn pfn_set_handles_block_boundaries() {
        let mut set = PfnSet::new();
        for pfn in [0u64, 63, 64, 127, 128, 1000] {
            assert!(set.insert(pfn));
            assert!(!set.insert(pfn), "double insert reports absent");
        }
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 1000]);
        assert!(set.remove(64));
        assert!(!set.remove(64));
        assert!(!set.contains(64));
        assert_eq!(set.len(), 5);
    }
}
