//! The swap backend abstraction.

use dmem_core::DisaggregatedMemory;
use dmem_types::DmemResult;
use std::sync::Arc;

/// A destination for swapped-out pages.
///
/// Backends receive whole batches so that systems with windowed swap-out
/// or batch swap-in (§IV-H) pay their base latency once per window; the
/// engine passes singleton batches when a system lacks batching.
pub trait SwapBackend {
    /// Human-readable system name (as used in the paper's figures).
    fn name(&self) -> &'static str;

    /// Stores a window of `(pfn, page)` pairs.
    ///
    /// # Errors
    ///
    /// Backend-specific; a failed store means the pages were *not*
    /// persisted and the engine keeps them dirty.
    fn store_batch(&mut self, pages: &[(u64, Vec<u8>)]) -> DmemResult<()>;

    /// Loads a window of pages, in `pfns` order.
    ///
    /// # Errors
    ///
    /// Fails if any page of the window is absent (the engine only
    /// requests pages it stored).
    fn load_batch(&mut self, pfns: &[u64]) -> DmemResult<Vec<Vec<u8>>>;

    /// `true` if the backend holds a (possibly stale-tolerant) copy of
    /// the page.
    fn contains(&self, pfn: u64) -> bool;

    /// Drops the backend's copy of a page (called when a resident page is
    /// dirtied, invalidating the swap-cache copy).
    fn invalidate(&mut self, pfn: u64);

    /// The disaggregated-memory cluster behind this backend, when there
    /// is one. Telemetry consumers use it to reach the cluster's
    /// [`MetricsRegistry`](dmem_sim::MetricsRegistry).
    fn cluster(&self) -> Option<&Arc<DisaggregatedMemory>> {
        None
    }
}

/// Convenience: store a single page.
///
/// # Errors
///
/// See [`SwapBackend::store_batch`].
pub fn store_one<B: SwapBackend + ?Sized>(backend: &mut B, pfn: u64, page: Vec<u8>) -> DmemResult<()> {
    backend.store_batch(&[(pfn, page)])
}

/// Convenience: load a single page.
///
/// # Errors
///
/// See [`SwapBackend::load_batch`].
pub fn load_one<B: SwapBackend + ?Sized>(backend: &mut B, pfn: u64) -> DmemResult<Vec<u8>> {
    Ok(backend.load_batch(&[pfn])?.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_types::{DmemError, EntryId};
    use std::collections::HashMap;

    /// Minimal in-memory backend used to exercise the helpers.
    #[derive(Default)]
    struct MemBackend {
        pages: HashMap<u64, Vec<u8>>,
    }

    impl SwapBackend for MemBackend {
        fn name(&self) -> &'static str {
            "mem"
        }
        fn store_batch(&mut self, pages: &[(u64, Vec<u8>)]) -> DmemResult<()> {
            for (pfn, data) in pages {
                self.pages.insert(*pfn, data.clone());
            }
            Ok(())
        }
        fn load_batch(&mut self, pfns: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
            pfns.iter()
                .map(|p| {
                    self.pages
                        .get(p)
                        .cloned()
                        .ok_or(DmemError::EntryNotFound(EntryId::default()))
                })
                .collect()
        }
        fn contains(&self, pfn: u64) -> bool {
            self.pages.contains_key(&pfn)
        }
        fn invalidate(&mut self, pfn: u64) {
            self.pages.remove(&pfn);
        }
    }

    #[test]
    fn helpers_roundtrip() {
        let mut b = MemBackend::default();
        store_one(&mut b, 7, vec![1, 2, 3]).unwrap();
        assert!(b.contains(7));
        assert_eq!(load_one(&mut b, 7).unwrap(), vec![1, 2, 3]);
        b.invalidate(7);
        assert!(!b.contains(7));
        assert!(load_one(&mut b, 7).is_err());
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn SwapBackend> = Box::<MemBackend>::default();
        store_one(boxed.as_mut(), 1, vec![9]).unwrap();
        assert_eq!(boxed.name(), "mem");
    }
}
