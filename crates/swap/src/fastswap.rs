//! FastSwap: hybrid disaggregated-memory swapping (paper §IV-H, §V-A).
//!
//! FastSwap parks swapped-out pages in the node-coordinated shared memory
//! pool first, overflows to triple-replicated remote memory in the
//! owner's group (with window-batched RDMA writes), and only then to
//! disk. Pages are compressed into size classes on every path. The
//! Fig. 8 distribution-ratio knob (FS-SM … FS-RDMA) deterministically
//! splits swap-out traffic between the node-level and cluster-level
//! pools.

use crate::backend::SwapBackend;
use dmem_core::{DisaggregatedMemory, TierPreference};
use dmem_types::{DistributionRatio, DmemResult, ServerId};
use std::sync::Arc;

/// How the backend routes swap-out traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FastSwapMode {
    /// The hybrid system: `ratio` of traffic to the node shared pool
    /// (falling through to remote/disk when full), the rest directly to
    /// remote memory.
    Hybrid(DistributionRatio),
    /// Compressed swapping straight to disk (the Fig. 4(b) configuration:
    /// FastSwap's compression with a disk swap device).
    DiskCompressed,
}

/// The FastSwap backend over a [`DisaggregatedMemory`] cluster.
pub struct FastSwapBackend {
    dm: Arc<DisaggregatedMemory>,
    server: ServerId,
    mode: FastSwapMode,
    accumulator: f64,
}

impl FastSwapBackend {
    /// Creates the backend for `server` on an assembled cluster.
    pub fn new(dm: Arc<DisaggregatedMemory>, server: ServerId, mode: FastSwapMode) -> Self {
        FastSwapBackend {
            dm,
            server,
            mode,
            accumulator: 0.0,
        }
    }

    /// The cluster this backend swaps into.
    pub fn cluster(&self) -> &Arc<DisaggregatedMemory> {
        &self.dm
    }

    /// The active mode.
    pub fn mode(&self) -> FastSwapMode {
        self.mode
    }

    /// Deterministic traffic split: returns `true` when the next page
    /// should try the node shared pool.
    fn next_is_shared(&mut self, shared_fraction: f64) -> bool {
        self.accumulator += shared_fraction;
        if self.accumulator >= 1.0 - 1e-12 {
            self.accumulator -= 1.0;
            true
        } else {
            false
        }
    }
}

impl SwapBackend for FastSwapBackend {
    fn name(&self) -> &'static str {
        "FastSwap"
    }

    fn store_batch(&mut self, pages: &[(u64, Vec<u8>)]) -> DmemResult<()> {
        match self.mode {
            FastSwapMode::DiskCompressed => {
                let span = self.dm.clock().tracer().span("swap", "fs.store");
                span.tag("route", "disk");
                span.tag("pages", pages.len());
                let batch: Vec<(u64, Vec<u8>)> = pages.to_vec();
                self.dm.put_batch(self.server, batch, TierPreference::Disk)
            }
            FastSwapMode::Hybrid(ratio) => {
                let mut shared_batch: Vec<(u64, Vec<u8>)> = Vec::new();
                let mut remote_batch: Vec<(u64, Vec<u8>)> = Vec::new();
                for (pfn, data) in pages {
                    if self.next_is_shared(ratio.shared_fraction()) {
                        shared_batch.push((*pfn, data.clone()));
                    } else {
                        remote_batch.push((*pfn, data.clone()));
                    }
                }
                let span = self.dm.clock().tracer().span("swap", "fs.store");
                span.tag("shared", shared_batch.len());
                span.tag("remote", remote_batch.len());
                if !shared_batch.is_empty() {
                    // Auto tiers shared -> remote -> disk, with the
                    // overflow legs batched (one replica set per window,
                    // one seek per disk window).
                    self.dm
                        .put_batch(self.server, shared_batch, TierPreference::Auto)?;
                }
                if !remote_batch.is_empty() {
                    self.dm
                        .put_batch(self.server, remote_batch, TierPreference::Remote)?;
                }
                Ok(())
            }
        }
    }

    fn load_batch(&mut self, pfns: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
        self.dm.get_batch(self.server, pfns)
    }

    fn contains(&self, pfn: u64) -> bool {
        self.dm.record(self.server, pfn).is_some()
    }

    fn invalidate(&mut self, pfn: u64) {
        let _ = self.dm.delete(self.server, pfn);
    }

    fn cluster(&self) -> Option<&Arc<DisaggregatedMemory>> {
        Some(&self.dm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{load_one, store_one};
    use dmem_compress::synth;
    use dmem_sim::DetRng;
    use dmem_types::{ClusterConfig, DonationPolicy};

    fn cluster() -> Arc<DisaggregatedMemory> {
        Arc::new(DisaggregatedMemory::new(ClusterConfig::small()).unwrap())
    }

    fn page(seed: u64) -> Vec<u8> {
        let mut rng = DetRng::new(seed);
        synth::page_around_ratio(3.0, 0.5, &mut rng)
    }

    #[test]
    fn fs_sm_prefers_shared_pool() {
        let dm = cluster();
        let server = dm.servers()[0];
        let mut b = FastSwapBackend::new(
            Arc::clone(&dm),
            server,
            FastSwapMode::Hybrid(DistributionRatio::FS_SM),
        );
        for pfn in 0..8 {
            store_one(&mut b, pfn, page(pfn)).unwrap();
        }
        let stats = dm.stats();
        assert_eq!(stats.shared, 8, "FS-SM sends everything to the shared pool");
        assert_eq!(stats.remote, 0);
        for pfn in 0..8 {
            assert_eq!(load_one(&mut b, pfn).unwrap(), page(pfn));
        }
    }

    #[test]
    fn fs_rdma_sends_everything_remote() {
        let dm = cluster();
        let server = dm.servers()[0];
        let mut b = FastSwapBackend::new(
            Arc::clone(&dm),
            server,
            FastSwapMode::Hybrid(DistributionRatio::FS_RDMA),
        );
        let batch: Vec<(u64, Vec<u8>)> = (0..8).map(|p| (p, page(p))).collect();
        b.store_batch(&batch).unwrap();
        let stats = dm.stats();
        assert_eq!(stats.remote, 8);
        assert_eq!(stats.shared, 0);
        let loaded = b.load_batch(&[0, 1, 2, 3]).unwrap();
        for (i, data) in loaded.iter().enumerate() {
            assert_eq!(data, &page(i as u64));
        }
    }

    #[test]
    fn ratio_splits_traffic_deterministically() {
        let dm = cluster();
        let server = dm.servers()[0];
        let mut b = FastSwapBackend::new(
            Arc::clone(&dm),
            server,
            FastSwapMode::Hybrid(DistributionRatio::FS_7_3),
        );
        let batch: Vec<(u64, Vec<u8>)> = (0..100).map(|p| (p, page(p))).collect();
        b.store_batch(&batch).unwrap();
        let stats = dm.stats();
        assert_eq!(stats.shared, 70, "70% of a 100-page window is shared");
        assert_eq!(stats.remote, 30);
    }

    #[test]
    fn shared_overflow_spills_transparently() {
        let mut config = ClusterConfig::small();
        config.server.donation = DonationPolicy::fixed(0.0); // zero shared pool
        let dm = Arc::new(DisaggregatedMemory::new(config).unwrap());
        let server = dm.servers()[0];
        let mut b = FastSwapBackend::new(
            Arc::clone(&dm),
            server,
            FastSwapMode::Hybrid(DistributionRatio::FS_SM),
        );
        store_one(&mut b, 1, page(1)).unwrap();
        let stats = dm.stats();
        assert_eq!(stats.shared, 0);
        assert_eq!(stats.remote, 1, "FS-SM with no pool falls through to remote");
        assert_eq!(load_one(&mut b, 1).unwrap(), page(1));
    }

    #[test]
    fn disk_compressed_mode() {
        let dm = cluster();
        let server = dm.servers()[0];
        let mut b = FastSwapBackend::new(Arc::clone(&dm), server, FastSwapMode::DiskCompressed);
        store_one(&mut b, 1, vec![0u8; 4096]).unwrap();
        let record = dm.record(server, 1).unwrap();
        assert!(record.location.is_disk());
        assert!(record.class.is_some(), "disk path still compresses");
        assert!(record.stored_len < 4096);
        assert_eq!(load_one(&mut b, 1).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn invalidate_and_contains() {
        let dm = cluster();
        let server = dm.servers()[0];
        let mut b = FastSwapBackend::new(
            Arc::clone(&dm),
            server,
            FastSwapMode::Hybrid(DistributionRatio::FS_SM),
        );
        store_one(&mut b, 9, page(9)).unwrap();
        assert!(b.contains(9));
        b.invalidate(9);
        assert!(!b.contains(9));
        b.invalidate(9); // idempotent
    }
}
