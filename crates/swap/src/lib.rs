//! In-memory swapping over disaggregated memory (FastSwap and baselines).
//!
//! This crate reproduces the paper's §V-A experiments: a paging engine
//! drives workload page-reference strings through pluggable swap backends,
//! charging every device operation to the shared virtual clock. The
//! backends are the four systems the paper compares plus zswap:
//!
//! * [`LinuxDiskSwap`] — the Linux baseline: pages swap to the node's
//!   7.2K rpm disk;
//! * [`ZswapBackend`] — zswap: a compressed RAM cache (zbud) in front of
//!   the disk;
//! * [`NbdxBackend`] — NBDX: a remote block device over RDMA, one fixed
//!   remote peer, per-page 4 KiB messages;
//! * [`InfiniswapBackend`] — Infiniswap: remote memory paging built on the
//!   NBDX-style data path with slab-granular placement across peers and a
//!   disk fallback, no compression, no batching;
//! * [`FastSwapBackend`] — the paper's hybrid system: node-level shared
//!   memory first, batched+compressed remote memory second, disk last,
//!   with the Fig. 8 node/cluster distribution-ratio knob.
//!
//! The engine implements LRU eviction, write-behind swap-out windows and
//! proactive batch swap-in (PBS) — both halves of it: sequential-gated
//! readahead on faults, and a background restore that streams a parked
//! working set back into free frames (the Fig. 9 recovery mechanism) —
//! so Fig. 6/9's PBS comparisons are a configuration flag, not a code
//! fork.
//!
//! # Examples
//!
//! ```
//! use dmem_swap::{build_system, SwapScale, SystemKind};
//!
//! let scale = SwapScale::small();
//! // Run the same trace through Linux disk swap and FastSwap.
//! let linux = dmem_swap::run_ml_workload(SystemKind::Linux, "PageRank", &scale).unwrap();
//! let fast = dmem_swap::run_ml_workload(SystemKind::fastswap_default(), "PageRank", &scale).unwrap();
//! assert!(fast.completion < linux.completion, "FastSwap must beat disk swap");
//! # let _ = build_system; // re-exported factory
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod disk;
pub mod engine;
pub mod fastswap;
pub mod lru;
pub mod remote_paging;
pub mod systems;
pub mod zswap_backend;

pub use backend::SwapBackend;
pub use disk::LinuxDiskSwap;
pub use engine::{EngineConfig, EngineStats, PageSource, PagingEngine};
pub use fastswap::FastSwapBackend;
pub use lru::{FrameFlags, FrameLru, PfnSet};
pub use remote_paging::{InfiniswapBackend, NbdxBackend};
pub use systems::{build_system, build_system_with_pages, run_kv_throughput, run_kv_timeline, run_ml_workload, RunResult, SwapScale, SystemKind};
pub use zswap_backend::ZswapBackend;
