//! zswap: a compressed RAM cache in front of the disk swap device.
//!
//! The Fig. 3 baseline (paper reference \[32\]). Pages are compressed and
//! parked in a zbud pool; pool overflow and poorly compressible pages go
//! to disk. Compression happens on the local CPU and is charged to the
//! clock; pool hits avoid the disk entirely.

use crate::backend::SwapBackend;
use dmem_compress::{zswap::ZswapInsert, CompressMemo, PageCodec, ZswapCache, ZswapStats};
use dmem_core::DiskTier;
use dmem_sim::{CostModel, SimClock};
use dmem_types::{CompressionMode, DmemResult, EntryId, ServerId};

/// The zswap backend: compressed RAM pool with disk writeback.
pub struct ZswapBackend {
    server: ServerId,
    clock: SimClock,
    cost: CostModel,
    codec: PageCodec,
    /// Byte-guarded memo: engine page content is a pure function of the
    /// pfn, so steady-state re-stores skip the LZ matcher. Simulated
    /// compression cost is still charged per store, so virtual-time
    /// results are unchanged.
    memo: CompressMemo,
    cache: ZswapCache,
    disk: DiskTier,
}

impl ZswapBackend {
    /// Creates a zswap backend with a pool of `pool_frames` 4 KiB frames.
    pub fn new(server: ServerId, pool_frames: usize, clock: SimClock, cost: CostModel) -> Self {
        ZswapBackend {
            server,
            clock: clock.clone(),
            cost,
            // zswap compresses to exact bytes; the 4-granularity codec's
            // underlying LZ stream is reused, zbud does the accounting.
            codec: PageCodec::new(CompressionMode::FourGranularity),
            memo: CompressMemo::with_default_capacity(),
            cache: ZswapCache::new(pool_frames),
            disk: DiskTier::new(clock, cost),
        }
    }

    fn entry(&self, pfn: u64) -> EntryId {
        EntryId::new(self.server, pfn)
    }

    /// Pool statistics (the Fig. 3 effective-ratio accounting).
    pub fn pool_stats(&self) -> ZswapStats {
        self.cache.stats()
    }
}

impl SwapBackend for ZswapBackend {
    fn name(&self) -> &'static str {
        "zswap"
    }

    fn store_batch(&mut self, pages: &[(u64, Vec<u8>)]) -> DmemResult<()> {
        for (pfn, data) in pages {
            let span = self.clock.tracer().span("swap", "zswap.store");
            self.clock.advance(self.cost.compress_page);
            let compressed = self.memo.get_or_compress((0, *pfn), &self.codec, data);
            match self.cache.insert(*pfn, compressed) {
                ZswapInsert::Stored { evicted } => {
                    span.tag("tier", if evicted.is_empty() { "zswap" } else { "zswap+disk" });
                    for (victim_pfn, victim) in evicted {
                        // Writeback decompresses and writes the raw page.
                        self.clock.advance(self.cost.decompress_page);
                        let raw = self.memo.get_or_decompress(&self.codec, &victim)?;
                        self.disk.store(self.server.node(), self.entry(victim_pfn), raw);
                    }
                }
                ZswapInsert::Rejected(_) => {
                    span.tag("tier", "disk");
                    self.disk
                        .store(self.server.node(), self.entry(*pfn), data.clone());
                }
            }
        }
        Ok(())
    }

    fn load_batch(&mut self, pfns: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
        let mut out = Vec::with_capacity(pfns.len());
        for pfn in pfns {
            let span = self.clock.tracer().span("swap", "zswap.load");
            if let Some(stored) = self.cache.get(*pfn) {
                span.tag("tier", "zswap");
                let stored = stored.clone();
                // Pool hit: DRAM access plus decompression.
                self.clock.advance(self.cost.dram.transfer(stored.data.len()));
                self.clock.advance(self.cost.decompress_page);
                out.push(self.memo.get_or_decompress(&self.codec, &stored)?);
            } else {
                span.tag("tier", "disk");
                out.push(self.disk.load(self.server.node(), self.entry(*pfn))?);
            }
        }
        Ok(out)
    }

    fn contains(&self, pfn: u64) -> bool {
        self.cache.contains(pfn) || self.disk.contains(self.server.node(), self.entry(pfn))
    }

    fn invalidate(&mut self, pfn: u64) {
        self.cache.remove(pfn);
        let _ = self.disk.delete(self.server.node(), self.entry(pfn));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{load_one, store_one};
    use dmem_compress::synth;
    use dmem_sim::DetRng;
    use dmem_types::NodeId;
    use rand::SeedableRng;

    fn backend(frames: usize) -> (SimClock, ZswapBackend) {
        let clock = SimClock::new();
        let server = ServerId::new(NodeId::new(0), 0);
        let b = ZswapBackend::new(server, frames, clock.clone(), CostModel::paper_default());
        (clock, b)
    }

    fn compressible_page(seed: u64) -> Vec<u8> {
        let mut rng = DetRng::new(seed);
        synth::page_with_ratio(6.0, &mut rng)
    }

    #[test]
    fn pool_hit_avoids_disk_latency() {
        let (clock, mut b) = backend(16);
        store_one(&mut b, 1, compressible_page(1)).unwrap();
        let t0 = clock.now();
        let loaded = load_one(&mut b, 1).unwrap();
        let elapsed = clock.now() - t0;
        assert_eq!(loaded, compressible_page(1));
        assert!(
            elapsed.as_micros_f64() < 100.0,
            "pool hit must be micro-scale, got {elapsed}"
        );
    }

    #[test]
    fn incompressible_pages_go_to_disk() {
        let (clock, mut b) = backend(16);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        use rand::RngCore;
        let mut page = vec![0u8; 4096];
        rng.fill_bytes(&mut page);
        store_one(&mut b, 1, page.clone()).unwrap();
        assert_eq!(b.pool_stats().rejected, 1);
        let t0 = clock.now();
        assert_eq!(load_one(&mut b, 1).unwrap(), page);
        assert!((clock.now() - t0).as_millis_f64() > 3.0, "disk path");
    }

    #[test]
    fn pool_overflow_writes_back_to_disk() {
        let (_, mut b) = backend(2); // 2 frames = at most 4 buddies
        for pfn in 0..8 {
            store_one(&mut b, pfn, compressible_page(pfn)).unwrap();
        }
        assert!(b.pool_stats().evicted > 0);
        // Every page remains loadable, pool or disk.
        for pfn in 0..8 {
            assert_eq!(load_one(&mut b, pfn).unwrap(), compressible_page(pfn));
            assert!(b.contains(pfn));
        }
    }

    #[test]
    fn invalidate_clears_both_tiers() {
        let (_, mut b) = backend(4);
        store_one(&mut b, 1, compressible_page(1)).unwrap();
        b.invalidate(1);
        assert!(!b.contains(1));
        assert!(b.load_batch(&[1]).is_err());
    }
}
