//! The Linux baseline: disk swap.

use crate::backend::SwapBackend;
use dmem_core::DiskTier;
use dmem_sim::{CostModel, SimClock};
use dmem_types::{DmemResult, EntryId, ServerId};

/// Swap pages to the node's spinning disk, as stock Linux does when no
/// disaggregated memory exists. Batches map to sequential disk I/O (one
/// seek per batch), which is how the kernel clusters swap writes.
pub struct LinuxDiskSwap {
    server: ServerId,
    disk: DiskTier,
}

impl LinuxDiskSwap {
    /// Creates the backend over its own simulated disk.
    pub fn new(server: ServerId, clock: SimClock, cost: CostModel) -> Self {
        LinuxDiskSwap {
            server,
            disk: DiskTier::new(clock, cost),
        }
    }

    fn entry(&self, pfn: u64) -> EntryId {
        EntryId::new(self.server, pfn)
    }
}

impl SwapBackend for LinuxDiskSwap {
    fn name(&self) -> &'static str {
        "Linux"
    }

    fn store_batch(&mut self, pages: &[(u64, Vec<u8>)]) -> DmemResult<()> {
        let batch: Vec<(EntryId, Vec<u8>)> = pages
            .iter()
            .map(|(pfn, data)| (self.entry(*pfn), data.clone()))
            .collect();
        self.disk.store_batch(self.server.node(), batch);
        Ok(())
    }

    fn load_batch(&mut self, pfns: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
        let entries: Vec<EntryId> = pfns.iter().map(|p| self.entry(*p)).collect();
        self.disk.load_batch(self.server.node(), &entries)
    }

    fn contains(&self, pfn: u64) -> bool {
        self.disk.contains(self.server.node(), self.entry(pfn))
    }

    fn invalidate(&mut self, pfn: u64) {
        let _ = self.disk.delete(self.server.node(), self.entry(pfn));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{load_one, store_one};
    use dmem_types::NodeId;

    fn backend() -> (SimClock, LinuxDiskSwap) {
        let clock = SimClock::new();
        let server = ServerId::new(NodeId::new(0), 0);
        let b = LinuxDiskSwap::new(server, clock.clone(), CostModel::paper_default());
        (clock, b)
    }

    #[test]
    fn roundtrip_with_disk_latency() {
        let (clock, mut b) = backend();
        store_one(&mut b, 1, vec![7u8; 4096]).unwrap();
        assert!(b.contains(1));
        let t0 = clock.now();
        assert_eq!(load_one(&mut b, 1).unwrap(), vec![7u8; 4096]);
        assert!(
            (clock.now() - t0).as_millis_f64() > 3.0,
            "a disk page read costs milliseconds"
        );
    }

    #[test]
    fn batch_is_one_seek() {
        let (clock, mut b) = backend();
        let batch: Vec<(u64, Vec<u8>)> = (0..8).map(|p| (p, vec![0u8; 4096])).collect();
        let t0 = clock.now();
        b.store_batch(&batch).unwrap();
        let batched = clock.now() - t0;
        let t1 = clock.now();
        for p in 8..16 {
            store_one(&mut b, p, vec![0u8; 4096]).unwrap();
        }
        let singles = clock.now() - t1;
        assert!(batched.as_nanos() * 4 < singles.as_nanos());
    }

    #[test]
    fn invalidate_removes() {
        let (_, mut b) = backend();
        store_one(&mut b, 5, vec![1]).unwrap();
        b.invalidate(5);
        assert!(!b.contains(5));
        assert!(b.load_batch(&[5]).is_err());
        b.invalidate(5); // idempotent
    }

    #[test]
    fn name_is_linux() {
        let (_, b) = backend();
        assert_eq!(b.name(), "Linux");
    }
}
