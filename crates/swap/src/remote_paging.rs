//! Remote-memory paging baselines: NBDX and Infiniswap.
//!
//! NBDX is a network block device over RDMA: the swap device maps to one
//! remote peer's registered memory, every 4 KiB page is its own message.
//! Infiniswap (the paper's reference \[26\]) builds remote paging on that
//! data path but places *slabs* of the swap space across many peers
//! (power-of-two-choices by free memory) with a disk fallback. Neither
//! compresses pages nor batches swap-ins — the two gaps FastSwap exploits
//! in Figs. 6-9. The extra block-layer indirection of Infiniswap over raw
//! NBDX is modelled as a small per-operation CPU overhead.

use crate::backend::SwapBackend;
use dmem_cluster::RemoteStore;
use dmem_core::DiskTier;
use dmem_sim::{DetRng, SimDuration};
use dmem_types::{DmemError, DmemResult, EntryId, NodeId, ServerId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

enum Target {
    /// NBDX: one fixed remote peer is the block device.
    Fixed(NodeId),
    /// Infiniswap: slabs of `pages_per_slab` pages placed across peers.
    Slabs {
        pages_per_slab: u64,
        placed: HashMap<u64, NodeId>,
        rng: DetRng,
    },
}

struct RemotePaging {
    server: ServerId,
    store: Arc<RemoteStore>,
    disk: DiskTier,
    on_disk: HashSet<u64>,
    on_remote: HashMap<u64, NodeId>,
    per_op_overhead: SimDuration,
    target: Target,
}

impl RemotePaging {
    fn entry(&self, pfn: u64) -> EntryId {
        EntryId::new(self.server, pfn)
    }

    fn pick_host(&mut self, pfn: u64) -> DmemResult<NodeId> {
        let local = self.server.node();
        match &mut self.target {
            Target::Fixed(node) => Ok(*node),
            Target::Slabs {
                pages_per_slab,
                placed,
                rng,
            } => {
                let slab = pfn / *pages_per_slab;
                if let Some(&node) = placed.get(&slab) {
                    return Ok(node);
                }
                let candidates = self.store.membership().candidates(local);
                if candidates.is_empty() {
                    return Err(DmemError::CapacityExhausted {
                        pool: "no remote peers".into(),
                    });
                }
                // Power of two choices by advertised free memory, as
                // Infiniswap's slab placement does.
                let a = candidates[rng.below(candidates.len())];
                let b = candidates[rng.below(candidates.len())];
                let node = if self.store.membership().free_of(a)
                    >= self.store.membership().free_of(b)
                {
                    a
                } else {
                    b
                };
                placed.insert(slab, node);
                Ok(node)
            }
        }
    }

    fn store_page(&mut self, pfn: u64, data: &[u8]) -> DmemResult<()> {
        self.store.fabric().clock().advance(self.per_op_overhead);
        let local = self.server.node();
        let host = match self.pick_host(pfn) {
            Ok(h) => h,
            Err(_) => {
                self.disk.store(local, self.entry(pfn), data.to_vec());
                self.on_disk.insert(pfn);
                return Ok(());
            }
        };
        match self.store.store(local, host, self.entry(pfn), data.to_vec()) {
            Ok(()) => {
                self.on_remote.insert(pfn, host);
                if self.store.fabric().faults_installed() {
                    // Under fault injection every remote page keeps a
                    // disk copy (write-through), so a page-in whose
                    // replicas are all unreachable degrades to disk
                    // instead of failing the fault handler.
                    self.disk.store(local, self.entry(pfn), data.to_vec());
                    self.on_disk.insert(pfn);
                    self.store
                        .fabric()
                        .metrics()
                        .counter("swap.faults.writethrough")
                        .inc();
                } else {
                    self.on_disk.remove(&pfn);
                }
                Ok(())
            }
            Err(_) => {
                // Remote full or unreachable: page goes to disk, exactly
                // Infiniswap's fallback semantics.
                self.disk.store(local, self.entry(pfn), data.to_vec());
                self.on_disk.insert(pfn);
                Ok(())
            }
        }
    }

    fn load_page(&mut self, pfn: u64) -> DmemResult<Vec<u8>> {
        self.store.fabric().clock().advance(self.per_op_overhead);
        let local = self.server.node();
        if let Some(&host) = self.on_remote.get(&pfn) {
            match self.store.load(local, host, self.entry(pfn)) {
                Ok(data) => return Ok(data),
                Err(_) => {
                    // Remote lost (node crash): fall through to disk copy
                    // if one exists; otherwise the page is gone.
                    self.on_remote.remove(&pfn);
                    if self.store.fabric().faults_installed() && self.on_disk.contains(&pfn) {
                        let fabric = self.store.fabric();
                        fabric.metrics().counter("swap.faults.disk_degrade").inc();
                        let now = fabric.clock().now();
                        fabric
                            .clock()
                            .tracer()
                            .record_async("swap", "degrade.disk", now, now, &[("pfn", pfn)]);
                    }
                }
            }
        }
        if self.on_disk.contains(&pfn) {
            return self.disk.load(local, self.entry(pfn));
        }
        Err(DmemError::EntryNotFound(self.entry(pfn)))
    }
}

/// NBDX: remote block device over RDMA with a single fixed peer.
pub struct NbdxBackend(RemotePaging);

impl NbdxBackend {
    /// Per-operation device overhead of the raw block path.
    pub const OVERHEAD: SimDuration = SimDuration::from_micros(5);

    /// Creates an NBDX device backed by `target`'s receive pool.
    pub fn new(server: ServerId, store: Arc<RemoteStore>, target: NodeId, disk: DiskTier) -> Self {
        NbdxBackend(RemotePaging {
            server,
            store,
            disk,
            on_disk: HashSet::new(),
            on_remote: HashMap::new(),
            per_op_overhead: Self::OVERHEAD,
            target: Target::Fixed(target),
        })
    }
}

impl SwapBackend for NbdxBackend {
    fn name(&self) -> &'static str {
        "NBDX"
    }
    fn store_batch(&mut self, pages: &[(u64, Vec<u8>)]) -> DmemResult<()> {
        for (pfn, data) in pages {
            self.0.store_page(*pfn, data)?;
        }
        Ok(())
    }
    fn load_batch(&mut self, pfns: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
        pfns.iter().map(|p| self.0.load_page(*p)).collect()
    }
    fn contains(&self, pfn: u64) -> bool {
        self.0.on_remote.contains_key(&pfn) || self.0.on_disk.contains(&pfn)
    }
    fn invalidate(&mut self, pfn: u64) {
        if let Some(host) = self.0.on_remote.remove(&pfn) {
            let _ = self
                .0
                .store
                .delete(self.0.server.node(), host, self.0.entry(pfn));
        }
        if self.0.on_disk.remove(&pfn) {
            let _ = self.0.disk.delete(self.0.server.node(), self.0.entry(pfn));
        }
    }
}

/// Infiniswap: slab-placed remote paging with disk fallback.
pub struct InfiniswapBackend(RemotePaging);

impl InfiniswapBackend {
    /// Per-operation overhead: NBDX path plus the block-layer request
    /// queue, bio handling and slab-bitmap bookkeeping Infiniswap adds
    /// on every 4 KiB page (it demand-pages through the full block
    /// stack, which is the overhead FastSwap's batched paths avoid).
    pub const OVERHEAD: SimDuration = SimDuration::from_micros(10);
    /// Infiniswap's slab granularity, scaled down with the simulation
    /// (the real system uses 1 GB slabs for TB-scale memory).
    pub const PAGES_PER_SLAB: u64 = 256;

    /// Creates an Infiniswap device over the cluster's remote store.
    pub fn new(server: ServerId, store: Arc<RemoteStore>, disk: DiskTier, seed: u64) -> Self {
        InfiniswapBackend(RemotePaging {
            server,
            store,
            disk,
            on_disk: HashSet::new(),
            on_remote: HashMap::new(),
            per_op_overhead: Self::OVERHEAD,
            target: Target::Slabs {
                pages_per_slab: Self::PAGES_PER_SLAB,
                placed: HashMap::new(),
                rng: DetRng::new(seed).fork("infiniswap-placement"),
            },
        })
    }
}

impl SwapBackend for InfiniswapBackend {
    fn name(&self) -> &'static str {
        "Infiniswap"
    }
    fn store_batch(&mut self, pages: &[(u64, Vec<u8>)]) -> DmemResult<()> {
        for (pfn, data) in pages {
            self.0.store_page(*pfn, data)?;
        }
        Ok(())
    }
    fn load_batch(&mut self, pfns: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
        pfns.iter().map(|p| self.0.load_page(*p)).collect()
    }
    fn contains(&self, pfn: u64) -> bool {
        self.0.on_remote.contains_key(&pfn) || self.0.on_disk.contains(&pfn)
    }
    fn invalidate(&mut self, pfn: u64) {
        if let Some(host) = self.0.on_remote.remove(&pfn) {
            let _ = self
                .0
                .store
                .delete(self.0.server.node(), host, self.0.entry(pfn));
        }
        if self.0.on_disk.remove(&pfn) {
            let _ = self.0.disk.delete(self.0.server.node(), self.0.entry(pfn));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{load_one, store_one};
    use dmem_cluster::ClusterMembership;
    use dmem_net::Fabric;
    use dmem_sim::{CostModel, FailureEvent, FailureInjector, SimClock};
    use dmem_types::ByteSize;

    fn cluster(n: u32, pool_kib: u64) -> (SimClock, FailureInjector, Arc<RemoteStore>, DiskTier) {
        let clock = SimClock::new();
        let failures = FailureInjector::new(clock.clone());
        let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures.clone());
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let membership = ClusterMembership::new(nodes, failures.clone());
        let store =
            Arc::new(RemoteStore::new(fabric, membership, ByteSize::from_kib(pool_kib)).unwrap());
        let disk = DiskTier::new(clock.clone(), CostModel::paper_default());
        (clock, failures, store, disk)
    }

    fn server() -> ServerId {
        ServerId::new(NodeId::new(0), 0)
    }

    #[test]
    fn nbdx_roundtrip_is_microsecond_scale() {
        let (clock, _, store, disk) = cluster(2, 256);
        let mut b = NbdxBackend::new(server(), store, NodeId::new(1), disk);
        store_one(&mut b, 1, vec![7u8; 4096]).unwrap();
        let t0 = clock.now();
        assert_eq!(load_one(&mut b, 1).unwrap(), vec![7u8; 4096]);
        let elapsed = clock.now() - t0;
        assert!(
            elapsed.as_micros_f64() < 50.0,
            "remote page read must be micro-scale, got {elapsed}"
        );
        assert_eq!(b.name(), "NBDX");
    }

    #[test]
    fn infiniswap_spreads_slabs_across_peers() {
        let (_, _, store, disk) = cluster(5, 4096);
        let mut b = InfiniswapBackend::new(server(), Arc::clone(&store), disk, 7);
        // Touch pages across many slabs.
        for slab in 0..8u64 {
            let pfn = slab * InfiniswapBackend::PAGES_PER_SLAB;
            store_one(&mut b, pfn, vec![slab as u8; 4096]).unwrap();
        }
        let hosts: HashSet<NodeId> = b.0.on_remote.values().copied().collect();
        assert!(hosts.len() >= 2, "slabs should land on multiple peers: {hosts:?}");
        // Pages of the same slab share a host.
        store_one(&mut b, 1, vec![9u8; 4096]).unwrap();
        assert_eq!(b.0.on_remote[&0], b.0.on_remote[&1]);
    }

    #[test]
    fn remote_exhaustion_falls_back_to_disk() {
        let (clock, _, store, disk) = cluster(2, 8); // 8 KiB remote = 2 pages
        let mut b = NbdxBackend::new(server(), store, NodeId::new(1), disk);
        for pfn in 0..4 {
            store_one(&mut b, pfn, vec![pfn as u8; 4096]).unwrap();
        }
        assert!(!b.0.on_disk.is_empty(), "overflow must hit the disk");
        // Disk-resident pages load at disk latency.
        let victim = *b.0.on_disk.iter().next().unwrap();
        let t0 = clock.now();
        assert_eq!(load_one(&mut b, victim).unwrap(), vec![victim as u8; 4096]);
        assert!((clock.now() - t0).as_millis_f64() > 3.0);
    }

    #[test]
    fn remote_node_crash_loses_undisked_pages() {
        let (_, failures, store, disk) = cluster(2, 256);
        let mut b = NbdxBackend::new(server(), Arc::clone(&store), NodeId::new(1), disk);
        store_one(&mut b, 1, vec![1u8; 4096]).unwrap();
        failures.inject_now(FailureEvent::NodeDown(NodeId::new(1)));
        assert!(load_one(&mut b, 1).is_err(), "no disk copy: page lost");
    }

    #[test]
    fn faults_mode_degrades_page_in_to_disk_instead_of_failing() {
        use dmem_net::{FabricFaults, FaultProfile, RetryPolicy};
        use dmem_sim::DetRng;

        let (_, failures, store, disk) = cluster(2, 256);
        // Installing the layer (even with a silent profile) switches the
        // backend to write-through, the graceful-degradation contract.
        store.fabric().install_faults(Arc::new(FabricFaults::new(
            DetRng::new(0),
            FaultProfile::none(),
            RetryPolicy::default(),
        )));
        let mut b = NbdxBackend::new(server(), Arc::clone(&store), NodeId::new(1), disk);
        store_one(&mut b, 1, vec![1u8; 4096]).unwrap();
        assert_eq!(
            store.fabric().metrics().counter("swap.faults.writethrough").get(),
            1
        );
        failures.inject_now(FailureEvent::NodeDown(NodeId::new(1)));
        // Same crash as above, but the page-in survives via the disk copy.
        assert_eq!(load_one(&mut b, 1).unwrap(), vec![1u8; 4096]);
        assert_eq!(
            store.fabric().metrics().counter("swap.faults.disk_degrade").get(),
            1
        );
    }

    #[test]
    fn invalidate_clears_both_tiers() {
        let (_, _, store, disk) = cluster(3, 256);
        let mut b = InfiniswapBackend::new(server(), store, disk, 1);
        store_one(&mut b, 5, vec![5u8; 128]).unwrap();
        assert!(b.contains(5));
        b.invalidate(5);
        assert!(!b.contains(5));
        assert!(load_one(&mut b, 5).is_err());
    }

    #[test]
    fn infiniswap_costs_more_than_nbdx_per_op() {
        assert!(InfiniswapBackend::OVERHEAD > NbdxBackend::OVERHEAD);
    }
}
