//! The paging engine.
//!
//! Models the part of the virtual-memory path that FastSwap modifies: a
//! virtual server with a fixed number of resident page frames, true-LRU
//! reclaim, a write-behind swap-out window, and demand or proactive-batch
//! swap-in. Every access charges a configurable per-access compute cost
//! (the application's own work per page of data), so completion time =
//! compute + fault service — the quantity Figs. 4-7 plot.
//!
//! The fault loop is the simulator's hottest path, so its bookkeeping is
//! all O(1) ([`crate::lru::FrameLru`] for recency, [`crate::lru::PfnSet`]
//! for backend residency) and its buffers are recycled: evicted page
//! content is generated into pooled 4 KiB buffers that flow through the
//! write-behind window and back to the pool, so a warmed-up engine
//! performs no heap allocation per access (asserted by the
//! `alloc_smoke` integration test).

use crate::backend::SwapBackend;
use crate::lru::{FrameLru, PfnSet};
use dmem_compress::synth;
use dmem_sim::{DetRng, SimClock, SimDuration, SimInstant};
use dmem_types::{DmemResult, SwapInMode};
use dmem_workloads::PageAccess;
use std::fmt;

/// Deterministic page-content generator: the same pfn always regenerates
/// the same bytes, with per-workload compressibility.
#[derive(Debug, Clone)]
pub struct PageSource {
    mean_ratio: f64,
    spread: f64,
    seed: u64,
}

impl PageSource {
    /// Creates a source producing pages around the given compression
    /// ratio.
    pub fn new(mean_ratio: f64, spread: f64, seed: u64) -> Self {
        PageSource {
            mean_ratio,
            spread,
            seed,
        }
    }

    /// The bytes of page `pfn`.
    pub fn page(&self, pfn: u64) -> Vec<u8> {
        let mut page = Vec::new();
        self.page_into(pfn, &mut page);
        page
    }

    /// [`PageSource::page`] into a caller-provided buffer, reusing its
    /// capacity. The content is a pure function of `(seed, pfn)`, so
    /// repeated calls for the same pfn yield identical bytes.
    pub fn page_into(&self, pfn: u64, page: &mut Vec<u8>) {
        let mut rng = DetRng::new(self.seed).fork_indexed("page", pfn);
        synth::page_mixture_into(
            self.mean_ratio,
            self.spread,
            synth::DEFAULT_ZERO_FRACTION,
            &mut rng,
            page,
        );
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Resident page frames (the "memory" of the virtual server). The
    /// paper's 75%/50% configurations set this to that fraction of the
    /// working set.
    pub frames: usize,
    /// Dirty pages buffered before one batched swap-out (1 = no batching,
    /// the Infiniswap/Linux behaviour).
    pub swap_out_window: usize,
    /// Swap-in strategy: demand paging or proactive batch swap-in.
    pub swap_in: SwapInMode,
    /// Application compute charged per page access.
    pub compute_per_access: SimDuration,
    /// Kernel cost of taking one major fault (trap, page-table walk,
    /// swap-entry lookup, context switch). Charged once per fault, so
    /// batch swap-in amortizes it across the window — a large part of why
    /// PBS wins in Fig. 6/9.
    pub fault_overhead: SimDuration,
}

impl EngineConfig {
    /// A demand-paging configuration with no batching (the baselines).
    pub fn demand(frames: usize) -> Self {
        EngineConfig {
            frames,
            swap_out_window: 1,
            swap_in: SwapInMode::Demand,
            compute_per_access: SimDuration::from_micros(2),
            fault_overhead: SimDuration::from_micros(15),
        }
    }

    /// FastSwap's batched configuration (window 8 both directions).
    pub fn batched(frames: usize) -> Self {
        EngineConfig {
            frames,
            swap_out_window: 8,
            swap_in: SwapInMode::ProactiveBatch { window: 8 },
            compute_per_access: SimDuration::from_micros(2),
            fault_overhead: SimDuration::from_micros(15),
        }
    }
}

/// Counters the engine maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total page accesses.
    pub accesses: u64,
    /// Faults served from the backend (page had been swapped out).
    pub major_faults: u64,
    /// First-touch faults (no I/O).
    pub minor_faults: u64,
    /// Faults absorbed by the write-behind buffer.
    pub writeback_hits: u64,
    /// Pages written to the backend.
    pub swap_outs: u64,
    /// Pages read from the backend (includes prefetched pages).
    pub swap_ins: u64,
    /// Prefetched pages that were later actually used.
    pub prefetch_hits: u64,
    /// Clean pages dropped without writeback.
    pub clean_evictions: u64,
    /// Pages restored proactively (PBS background restore).
    pub proactive_restores: u64,
}

/// The paging engine. See the module docs.
pub struct PagingEngine {
    config: EngineConfig,
    clock: SimClock,
    backend: Box<dyn SwapBackend>,
    source: PageSource,
    frames: FrameLru,
    in_backend: PfnSet,
    writeback: Vec<(u64, Vec<u8>)>,
    /// Recycled 4 KiB page buffers: eviction pops one, fills it via
    /// [`PageSource::page_into`], and the write-behind flush returns it.
    page_pool: Vec<Vec<u8>>,
    /// Scratch pfn list for the swap-in window (reused across faults).
    fault_batch: Vec<u64>,
    /// Scratch pfn list for the proactive restore scan.
    restore_batch: Vec<u64>,
    recent_faults: std::collections::VecDeque<u64>,
    stats: EngineStats,
}

impl PagingEngine {
    /// Creates an engine over a backend and page source.
    ///
    /// # Panics
    ///
    /// Panics if `frames` or `swap_out_window` is zero.
    pub fn new(
        config: EngineConfig,
        clock: SimClock,
        backend: Box<dyn SwapBackend>,
        source: PageSource,
    ) -> Self {
        assert!(config.frames > 0, "at least one resident frame required");
        assert!(config.swap_out_window > 0, "swap-out window must be >= 1");
        let frames = FrameLru::with_capacity(config.frames);
        PagingEngine {
            config,
            clock,
            backend,
            source,
            frames,
            in_backend: PfnSet::new(),
            writeback: Vec::new(),
            page_pool: Vec::new(),
            fault_batch: Vec::new(),
            restore_batch: Vec::new(),
            recent_faults: std::collections::VecDeque::new(),
            stats: EngineStats::default(),
        }
    }

    /// The engine's statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The backend's display name.
    pub fn system_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The disaggregated-memory cluster behind the backend, when there is
    /// one (see [`SwapBackend::cluster`]).
    pub fn cluster(&self) -> Option<&std::sync::Arc<dmem_core::DisaggregatedMemory>> {
        self.backend.cluster()
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.frames.len()
    }

    fn touch(&mut self, pfn: u64, write: bool, prefetched: bool) {
        self.frames.touch(pfn, write, prefetched);
        if write {
            // The swap-cache copy (if any) is now stale.
            self.in_backend.remove(pfn);
            self.backend.invalidate(pfn);
        }
    }

    fn flush_writeback(&mut self) -> DmemResult<()> {
        if self.writeback.is_empty() {
            return Ok(());
        }
        let span = self.clock.tracer().span("swap", "out");
        span.tag("pages", self.writeback.len());
        self.backend.store_batch(&self.writeback)?;
        self.stats.swap_outs += self.writeback.len() as u64;
        for (pfn, buf) in self.writeback.drain(..) {
            self.in_backend.insert(pfn);
            self.page_pool.push(buf);
        }
        Ok(())
    }

    fn evict_one(&mut self) -> DmemResult<()> {
        let (victim, flags) = self.frames.pop_lru().expect("resident set nonempty");
        if !flags.dirty && self.in_backend.contains(victim) {
            // Clean page with a valid swap-cache copy: free to drop.
            self.stats.clean_evictions += 1;
            return Ok(());
        }
        let span = self.clock.tracer().span("swap", "evict");
        span.tag("pfn", victim);
        let mut buf = self.page_pool.pop().unwrap_or_default();
        self.source.page_into(victim, &mut buf);
        self.writeback.push((victim, buf));
        if self.writeback.len() >= self.config.swap_out_window {
            self.flush_writeback()?;
        }
        Ok(())
    }

    fn ensure_frames(&mut self, needed: usize) -> DmemResult<()> {
        while self.frames.len() + needed > self.config.frames {
            self.evict_one()?;
        }
        Ok(())
    }

    /// Serves one page access.
    ///
    /// # Errors
    ///
    /// Propagates backend failures (a backend that cannot store or load;
    /// the hybrid backends themselves fall back to disk internally, so in
    /// practice this surfaces only catastrophic failures).
    pub fn access(&mut self, pfn: u64, write: bool) -> DmemResult<()> {
        self.access_inner(pfn, write)?;
        self.proactive_restore()
    }

    fn access_inner(&mut self, pfn: u64, write: bool) -> DmemResult<()> {
        self.stats.accesses += 1;
        self.clock.advance(self.config.compute_per_access);

        if let Some(flags) = self.frames.flags(pfn) {
            if flags.prefetched {
                self.stats.prefetch_hits += 1;
            }
            self.touch(pfn, write, false);
            return Ok(());
        }
        // Write-behind buffer hit: page not yet flushed, pull it back.
        if let Some(pos) = self.writeback.iter().position(|(p, _)| *p == pfn) {
            let (_, buf) = self.writeback.remove(pos);
            self.page_pool.push(buf);
            self.stats.writeback_hits += 1;
            self.ensure_frames(1)?;
            self.touch(pfn, write, false);
            // It never reached the backend; it is dirty again.
            self.frames.set_dirty(pfn);
            return Ok(());
        }

        if self.in_backend.contains(pfn) {
            self.stats.major_faults += 1;
            let span = self.clock.tracer().span("swap", "in");
            self.clock.advance(self.config.fault_overhead);
            // Assemble the swap-in window: the faulted page plus up to
            // window-1 contiguous swapped-out successors (PBS).
            // Readahead gating: a full prefetch window only when the
            // fault stream looks sequential (the kernel's readahead and
            // FastSwap's PBS both ramp on sequentiality); random faults
            // fetch one page, avoiding wasted remote reads.
            let sequential = (1..=3)
                .filter_map(|d| pfn.checked_sub(d))
                .any(|p| self.recent_faults.contains(&p));
            self.recent_faults.push_back(pfn);
            if self.recent_faults.len() > 32 {
                self.recent_faults.pop_front();
            }
            let window = if sequential {
                self.config.swap_in.window().min(self.config.frames)
            } else {
                1
            };
            self.fault_batch.clear();
            self.fault_batch.push(pfn);
            if window > 1 {
                // Prefetch contiguous swapped-out successors; eviction
                // below makes room, as the kernel's readahead does.
                for next in pfn + 1.. {
                    if self.fault_batch.len() >= window {
                        break;
                    }
                    if self.in_backend.contains(next) && !self.frames.contains(next) {
                        self.fault_batch.push(next);
                    } else {
                        break;
                    }
                }
            }
            let batch_len = self.fault_batch.len();
            span.tag("pages", batch_len);
            span.tag("mode", if sequential { "readahead" } else { "demand" });
            self.ensure_frames(batch_len)?;
            let _pages = self.backend.load_batch(&self.fault_batch)?;
            self.stats.swap_ins += batch_len as u64;
            for i in 0..batch_len {
                let page = self.fault_batch[i];
                let is_faulted = i == 0;
                self.touch(page, write && is_faulted, !is_faulted);
            }
            Ok(())
        } else {
            // First touch: anonymous page, no I/O.
            self.stats.minor_faults += 1;
            self.ensure_frames(1)?;
            self.touch(pfn, write, false);
            Ok(())
        }
    }

    /// PBS's *proactive* side (paper Fig. 9): while free frames exist and
    /// swapped-out pages remain, stream them back in batches in the
    /// background, hottest (lowest-address) first. This is what lets a
    /// cold store recover at transfer bandwidth instead of one page per
    /// fault. No-op in demand mode or when memory is full.
    fn proactive_restore(&mut self) -> DmemResult<()> {
        let window = match self.config.swap_in {
            SwapInMode::ProactiveBatch { window } => window.max(1),
            SwapInMode::Demand => return Ok(()),
        };
        let free = self.config.frames.saturating_sub(self.frames.len());
        if free == 0 || self.in_backend.is_empty() {
            return Ok(());
        }
        let budget = free.min(window);
        self.restore_batch.clear();
        // Bounded scan: look at most a few windows deep so a pool full of
        // resident swap-cache copies cannot turn this into O(n) per access.
        for pfn in self.in_backend.iter().take(window * 8) {
            if self.restore_batch.len() >= budget {
                break;
            }
            if !self.frames.contains(pfn) && !self.writeback.iter().any(|(p, _)| *p == pfn) {
                self.restore_batch.push(pfn);
            }
        }
        if self.restore_batch.is_empty() {
            return Ok(());
        }
        let batch_len = self.restore_batch.len();
        let span = self.clock.tracer().span("swap", "restore");
        span.tag("pages", batch_len);
        let _pages = self.backend.load_batch(&self.restore_batch)?;
        self.stats.swap_ins += batch_len as u64;
        self.stats.proactive_restores += batch_len as u64;
        for i in 0..batch_len {
            let page = self.restore_batch[i];
            self.touch(page, false, true);
        }
        Ok(())
    }

    /// Runs a whole access trace, returning the stats and the virtual
    /// time it consumed.
    ///
    /// # Errors
    ///
    /// Propagates the first backend failure.
    pub fn run<I: IntoIterator<Item = PageAccess>>(
        &mut self,
        trace: I,
    ) -> DmemResult<(EngineStats, SimDuration)> {
        let start = self.clock.now();
        for access in trace {
            self.access(access.page.pfn(), access.write)?;
        }
        self.flush_writeback()?;
        Ok((self.stats, self.clock.now() - start))
    }

    /// Runs the trace while sampling throughput: returns `(stats, series)`
    /// where `series[i]` is the number of accesses completed in virtual
    /// second `i` (the Fig. 9 timeline).
    ///
    /// # Errors
    ///
    /// Propagates the first backend failure.
    pub fn run_with_timeline<I: IntoIterator<Item = PageAccess>>(
        &mut self,
        trace: I,
        horizon: SimDuration,
    ) -> DmemResult<(EngineStats, Vec<u64>)> {
        let start = self.clock.now();
        let buckets = horizon.as_secs_f64().ceil() as usize;
        let mut series = vec![0u64; buckets.max(1)];
        for access in trace {
            if self.clock.now() - start >= horizon {
                break;
            }
            self.access(access.page.pfn(), access.write)?;
            let elapsed = self.clock.now() - start;
            let bucket = (elapsed.as_secs_f64() as usize).min(series.len() - 1);
            series[bucket] += 1;
        }
        self.flush_writeback()?;
        Ok((self.stats, series))
    }

    /// Pre-faults the first `n` pages and then swaps them all out, so a
    /// run starts from full memory pressure (the Fig. 9 "cold" start where
    /// the store's working set begins on the swap device).
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn preload_swapped(&mut self, n: u64) -> DmemResult<()> {
        let batch_size = self.config.swap_out_window.max(1);
        let mut batch: Vec<(u64, Vec<u8>)> = Vec::with_capacity(batch_size);
        for pfn in 0..n {
            let mut buf = self.page_pool.pop().unwrap_or_default();
            self.source.page_into(pfn, &mut buf);
            batch.push((pfn, buf));
            if batch.len() >= batch_size {
                self.backend.store_batch(&batch)?;
                for (p, buf) in batch.drain(..) {
                    self.in_backend.insert(p);
                    self.page_pool.push(buf);
                }
            }
        }
        if !batch.is_empty() {
            self.backend.store_batch(&batch)?;
            for (p, buf) in batch.drain(..) {
                self.in_backend.insert(p);
                self.page_pool.push(buf);
            }
        }
        Ok(())
    }

    /// Reference to the stats of the current instant, as `SimInstant`.
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }
}

impl fmt::Debug for PagingEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagingEngine")
            .field("system", &self.backend.name())
            .field("frames", &self.config.frames)
            .field("resident", &self.frames.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_types::{DmemError, EntryId};
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Test backend recording batch shapes.
    #[derive(Default)]
    struct Recorder {
        pages: HashMap<u64, Vec<u8>>,
        store_batches: Vec<usize>,
        load_batches: Vec<usize>,
    }

    struct RecBackend(Arc<Mutex<Recorder>>);

    impl SwapBackend for RecBackend {
        fn name(&self) -> &'static str {
            "recorder"
        }
        fn store_batch(&mut self, pages: &[(u64, Vec<u8>)]) -> DmemResult<()> {
            let mut r = self.0.lock();
            r.store_batches.push(pages.len());
            for (p, d) in pages {
                r.pages.insert(*p, d.clone());
            }
            Ok(())
        }
        fn load_batch(&mut self, pfns: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
            let mut r = self.0.lock();
            r.load_batches.push(pfns.len());
            pfns.iter()
                .map(|p| {
                    r.pages
                        .get(p)
                        .cloned()
                        .ok_or(DmemError::EntryNotFound(EntryId::default()))
                })
                .collect()
        }
        fn contains(&self, pfn: u64) -> bool {
            self.0.lock().pages.contains_key(&pfn)
        }
        fn invalidate(&mut self, pfn: u64) {
            self.0.lock().pages.remove(&pfn);
        }
    }

    fn engine(config: EngineConfig) -> (Arc<Mutex<Recorder>>, PagingEngine) {
        let recorder = Arc::new(Mutex::new(Recorder::default()));
        let clock = SimClock::new();
        let engine = PagingEngine::new(
            config,
            clock,
            Box::new(RecBackend(Arc::clone(&recorder))),
            PageSource::new(3.0, 0.5, 42),
        );
        (recorder, engine)
    }

    #[test]
    fn first_touches_are_minor_faults() {
        let (_, mut e) = engine(EngineConfig::demand(4));
        for pfn in 0..4 {
            e.access(pfn, false).unwrap();
        }
        let s = e.stats();
        assert_eq!(s.minor_faults, 4);
        assert_eq!(s.major_faults, 0);
        assert_eq!(s.swap_outs, 0);
        assert_eq!(e.resident_pages(), 4);
    }

    #[test]
    fn overflow_swaps_out_lru_and_faults_back() {
        let (_, mut e) = engine(EngineConfig::demand(2));
        e.access(0, true).unwrap();
        e.access(1, true).unwrap();
        e.access(2, true).unwrap(); // evicts 0 (LRU), flushed (window 1)
        assert_eq!(e.stats().swap_outs, 1);
        e.access(0, false).unwrap(); // major fault
        let s = e.stats();
        assert_eq!(s.major_faults, 1);
        assert_eq!(s.swap_ins, 1);
    }

    #[test]
    fn lru_order_is_respected() {
        let (rec, mut e) = engine(EngineConfig::demand(2));
        e.access(0, true).unwrap();
        e.access(1, true).unwrap();
        e.access(0, false).unwrap(); // 0 now MRU
        e.access(2, true).unwrap(); // must evict 1, not 0
        assert!(rec.lock().pages.contains_key(&1));
        assert!(!rec.lock().pages.contains_key(&0));
    }

    #[test]
    fn clean_pages_evict_for_free() {
        let (_, mut e) = engine(EngineConfig::demand(2));
        e.access(0, true).unwrap();
        e.access(1, true).unwrap();
        e.access(2, true).unwrap(); // swap out 0
        e.access(0, false).unwrap(); // fault 0 back in (clean copy kept)
        e.access(3, true).unwrap(); // evicts 1 (dirty) -> swap out
        e.access(4, true).unwrap(); // evicts 2 (dirty) -> swap out... order varies
        // Re-fault 0 stays clean; evicting it later costs nothing.
        let before = e.stats().swap_outs;
        e.access(5, true).unwrap();
        e.access(6, true).unwrap();
        let s = e.stats();
        assert!(
            s.clean_evictions >= 1,
            "clean swap-cache pages should drop for free: {s:?}"
        );
        assert!(s.swap_outs >= before);
    }

    #[test]
    fn write_invalidates_swap_cache_copy() {
        let (rec, mut e) = engine(EngineConfig::demand(2));
        e.access(0, true).unwrap();
        e.access(1, true).unwrap();
        e.access(2, true).unwrap(); // evict 0
        e.access(0, true).unwrap(); // fault back AND dirty it
        assert!(
            !rec.lock().pages.contains_key(&0),
            "dirtying the page must invalidate the backend copy"
        );
    }

    #[test]
    fn swap_out_window_batches_stores() {
        let (rec, mut e) = engine(EngineConfig {
            swap_out_window: 4,
            ..EngineConfig::demand(2)
        });
        for pfn in 0..8 {
            e.access(pfn, true).unwrap();
        }
        // 6 evictions buffered in windows of 4: one full flush so far.
        let batches = rec.lock().store_batches.clone();
        assert!(batches.iter().all(|&b| b <= 4));
        assert!(batches.contains(&4), "a full window flush must occur: {batches:?}");
    }

    #[test]
    fn writeback_buffer_absorbs_refaults() {
        let (_, mut e) = engine(EngineConfig {
            swap_out_window: 8,
            ..EngineConfig::demand(2)
        });
        e.access(0, true).unwrap();
        e.access(1, true).unwrap();
        e.access(2, true).unwrap(); // 0 goes to writeback buffer (not flushed)
        e.access(0, false).unwrap(); // still in buffer: no backend I/O
        let s = e.stats();
        assert_eq!(s.writeback_hits, 1);
        assert_eq!(s.major_faults, 0);
        assert_eq!(s.swap_ins, 0);
    }

    #[test]
    fn pbs_prefetches_contiguous_pages() {
        let (rec, mut e) = engine(EngineConfig {
            swap_in: SwapInMode::ProactiveBatch { window: 4 },
            ..EngineConfig::demand(8)
        });
        // Store pages 0..8 in the backend via preload.
        e.preload_swapped(8).unwrap();
        // First access faults page 0 (readahead has no history), then the
        // proactive restore streams a window of 4 more pages into the
        // free frames.
        e.access(0, false).unwrap();
        assert_eq!(rec.lock().load_batches, vec![1, 4]);
        assert_eq!(e.resident_pages(), 5);
        // Next access hits a restored page (prefetch hit, no fault) and
        // the restore finishes the remaining 3 pages.
        e.access(1, false).unwrap();
        assert_eq!(rec.lock().load_batches, vec![1, 4, 3]);
        let s = e.stats();
        assert_eq!(s.major_faults, 1);
        assert_eq!(s.swap_ins, 8);
        assert_eq!(s.proactive_restores, 7);
        assert!(s.prefetch_hits >= 1);
        // Memory now full: no further restore activity.
        e.access(2, false).unwrap();
        assert_eq!(rec.lock().load_batches.len(), 3);
        assert_eq!(e.stats().major_faults, 1, "no further faults");
    }

    #[test]
    fn demand_mode_fetches_one() {
        let (rec, mut e) = engine(EngineConfig::demand(8));
        e.preload_swapped(6).unwrap();
        e.access(0, false).unwrap();
        assert_eq!(rec.lock().load_batches, vec![1]);
    }

    #[test]
    fn run_trace_and_time_accounting() {
        let (_, mut e) = engine(EngineConfig::demand(16));
        let accesses: Vec<PageAccess> = (0..64)
            .map(|i| PageAccess {
                page: dmem_types::PageId::new(i % 32),
                write: i % 3 == 0,
            })
            .collect();
        let (stats, elapsed) = e.run(accesses).unwrap();
        assert_eq!(stats.accesses, 64);
        assert!(
            elapsed >= SimDuration::from_micros(128),
            "compute cost alone is 64 × 2us"
        );
    }

    #[test]
    fn timeline_buckets_sum_to_accesses() {
        let (_, mut e) = engine(EngineConfig::demand(8));
        let accesses: Vec<PageAccess> = (0..100)
            .map(|i| PageAccess {
                page: dmem_types::PageId::new(i % 16),
                write: false,
            })
            .collect();
        let (stats, series) = e
            .run_with_timeline(accesses, SimDuration::from_secs(10))
            .unwrap();
        assert_eq!(series.iter().sum::<u64>(), stats.accesses);
        assert_eq!(series.len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one resident frame")]
    fn zero_frames_panics() {
        let _ = engine(EngineConfig::demand(0));
    }
}
