//! FastSwap under the multi-tenant QoS control plane.
//!
//! Swap traffic reaches the cluster through ordinary `ServerId`s, so
//! tenant identity flows into FastSwap for free: register the paging
//! server under a named tenant and every swapped page is metered,
//! quota-checked, and attributed. Without registration everything rides
//! the implicit system tenant and the engine changes nothing — the
//! property that keeps every pre-QoS figure byte-identical.

use dmem_qos::{QosConfig, QosEngine, TenantSpec};
use dmem_swap::{build_system_with_pages, PagingEngine, SwapScale, SystemKind};
use dmem_types::{ByteSize, CompressionMode, DistributionRatio};
use dmem_workloads::{catalog, TraceConfig};
use std::sync::Arc;

fn fastswap(scale: &SwapScale) -> PagingEngine {
    let kind = SystemKind::FastSwap {
        ratio: DistributionRatio::FS_SM,
        compression: CompressionMode::FourGranularity,
        pbs: true,
    };
    build_system_with_pages(kind, scale, 2.8, 0.8).unwrap()
}

/// Runs the small LogisticRegression trace and returns virtual
/// completion time in nanoseconds.
fn run_lr(engine: &mut PagingEngine, scale: &SwapScale) -> u64 {
    let profile = catalog::by_name("LogisticRegression").unwrap();
    let accesses = TraceConfig::scaled_from(profile, scale.working_set_pages).generate(scale.seed);
    let (stats, completion) = engine.run(accesses).unwrap();
    assert!(stats.major_faults > 0, "the trace must actually swap");
    completion.as_nanos()
}

/// Installs a QoS engine whose `paging` tenant owns every server, with
/// the given fast-tier quota.
fn register_paging(engine: &PagingEngine, quota: ByteSize) -> Arc<QosEngine> {
    let dm = engine.cluster().expect("FastSwap runs over a cluster");
    let qos = Arc::new(QosEngine::new(QosConfig::default()));
    let paging = qos.register_tenant(TenantSpec::new("paging", 200, quota));
    for server in dm.servers() {
        qos.assign_server(*server, paging);
    }
    dm.install_qos(Arc::clone(&qos));
    qos
}

#[test]
fn fastswap_attributes_swap_traffic_to_its_tenant() {
    let scale = SwapScale::small();
    let mut engine = fastswap(&scale);
    let qos = register_paging(&engine, ByteSize::from_mib(32));
    run_lr(&mut engine, &scale);

    let dm = engine.cluster().unwrap();
    assert!(
        dm.metrics().counter("qos.paging.admitted.bytes").get() > 0,
        "swapped pages must be admitted under the paging tenant"
    );
    let snapshot = qos.tenants_snapshot();
    let paging = snapshot.iter().find(|t| t.name == "paging").unwrap();
    assert!(
        paging.resident > 0,
        "swapped-out pages must count against the tenant's fast-tier residency"
    );
    assert!(
        !qos.decision_digest().starts_with("n=0 "),
        "admission decisions must land in the log: {}",
        qos.decision_digest()
    );
}

#[test]
fn fastswap_under_generous_quota_matches_the_unmanaged_run() {
    // The engine installed but never constraining (system-default-like
    // setup): virtual completion time must equal the plain run's, so
    // turning QoS on cannot perturb any figure built on FastSwap.
    let scale = SwapScale::small();
    let mut plain = fastswap(&scale);
    let plain_completion = run_lr(&mut plain, &scale);
    assert!(
        !plain.cluster().unwrap().metrics().to_string().contains("qos."),
        "no qos metric keys without an engine"
    );

    let mut managed = fastswap(&scale);
    register_paging(&managed, ByteSize::from_mib(512));
    let managed_completion = run_lr(&mut managed, &scale);
    assert_eq!(
        plain_completion, managed_completion,
        "an unconstraining QoS engine must not change virtual time"
    );
}

#[test]
fn fastswap_over_quota_degrades_to_disk_not_failure() {
    // A quota far below the swap working set: FastSwap keeps running —
    // over-quota pages degrade to disk (the paper's last-resort tier)
    // and the run just gets slower, never an error.
    let scale = SwapScale::small();
    let mut generous = fastswap(&scale);
    register_paging(&generous, ByteSize::from_mib(32));
    let fast = run_lr(&mut generous, &scale);

    let mut capped = fastswap(&scale);
    let qos = register_paging(&capped, ByteSize::from_kib(64));
    let slow = run_lr(&mut capped, &scale);

    let dm = capped.cluster().unwrap();
    assert!(
        dm.metrics().counter("qos.paging.rejected.bytes").get() > 0,
        "the tiny quota must actually reject pages"
    );
    let snapshot = qos.tenants_snapshot();
    let paging = snapshot.iter().find(|t| t.name == "paging").unwrap();
    assert!(
        paging.resident <= paging.quota,
        "residency must respect the quota: {} > {}",
        paging.resident,
        paging.quota
    );
    assert!(
        slow > fast,
        "disk-degraded swapping must cost virtual time: {slow} <= {fast}"
    );
}
