//! Steady-state allocation smoke test for the paging fault loop.
//!
//! The engine promises that a warmed-up fault loop performs zero heap
//! allocation: page buffers are pooled, batch pfn lists are reused
//! scratch, the LRU recycles slab slots, and the LZ scratch is
//! thread-local. This test installs a counting global allocator, warms
//! the engine through several full eviction cycles, and then asserts the
//! allocation count does not move across two more cycles.
//!
//! The backend is a sink (stores dropped, loads empty) so the count
//! isolates the engine itself; backend-internal allocation is its own
//! concern and is amortized by the memoization layer.

use dmem_swap::{EngineConfig, PageSource, PagingEngine, SwapBackend};
use dmem_sim::SimClock;
use dmem_types::DmemResult;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A backend that swallows stores and serves empty loads without touching
/// the heap.
struct SinkBackend;

impl SwapBackend for SinkBackend {
    fn name(&self) -> &'static str {
        "sink"
    }
    fn store_batch(&mut self, _pages: &[(u64, Vec<u8>)]) -> DmemResult<()> {
        Ok(())
    }
    fn load_batch(&mut self, _pfns: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
        Ok(Vec::new())
    }
    fn contains(&self, _pfn: u64) -> bool {
        true
    }
    fn invalidate(&mut self, _pfn: u64) {}
}

#[test]
fn fault_loop_steady_state_allocates_nothing() {
    const FRAMES: usize = 64;
    const PAGES: u64 = 128;

    let config = EngineConfig {
        swap_out_window: 8,
        ..EngineConfig::demand(FRAMES)
    };
    let mut engine = PagingEngine::new(
        config,
        SimClock::new(),
        Box::new(SinkBackend),
        PageSource::new(3.0, 0.5, 42),
    );

    // Warm up: several full sweeps of a working set twice the frame count
    // drives constant eviction, writeback flushes, and major refaults, and
    // grows every pool/scratch/map to its steady-state capacity.
    for round in 0..6 {
        for pfn in 0..PAGES {
            engine.access(pfn, round % 2 == 0).unwrap();
        }
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..2 {
        for pfn in 0..PAGES {
            engine.access(pfn, round % 2 == 0).unwrap();
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "warmed-up fault loop must not allocate ({} allocations over {} accesses)",
        after - before,
        2 * PAGES as usize,
    );
}
