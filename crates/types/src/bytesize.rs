//! Byte-size arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A quantity of bytes.
///
/// Wraps `u64` so memory capacities, donation amounts and transfer sizes
/// cannot be confused with counts or durations. Subtraction saturates at
/// zero — capacity accounting never wraps.
///
/// # Examples
///
/// ```
/// use dmem_types::ByteSize;
///
/// let pool = ByteSize::from_gib(2);
/// let slab = ByteSize::from_mib(1);
/// assert_eq!(pool / slab, 2048);
/// assert_eq!((slab * 4).as_u64(), 4 * 1024 * 1024);
/// assert_eq!(format!("{}", ByteSize::from_kib(512)), "512.0 KiB");
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    )]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size of `n` KiB.
    pub const fn from_kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// Creates a size of `n` MiB.
    pub const fn from_mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// Creates a size of `n` GiB.
    pub const fn from_gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `usize` (only possible on 32-bit
    /// targets).
    pub fn as_usize(self) -> usize {
        usize::try_from(self.0).expect("byte size exceeds usize")
    }

    /// Returns `true` if this is zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: ByteSize) -> Option<ByteSize> {
        self.0.checked_sub(rhs.0).map(ByteSize)
    }

    /// Multiplies by a ratio in `[0.0, 1.0+]`, rounding down.
    ///
    /// Used for donation fractions ("each server donates x% of its memory",
    /// paper §IV-B).
    pub fn scaled(self, ratio: f64) -> ByteSize {
        debug_assert!(ratio >= 0.0, "negative ratio");
        ByteSize((self.0 as f64 * ratio) as u64)
    }

    /// Number of whole pages of `page_size` bytes this size covers
    /// (rounding up).
    pub fn pages(self, page_size: usize) -> u64 {
        let ps = page_size as u64;
        self.0.div_ceil(ps)
    }

    /// Smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// Larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    /// Saturating at zero: pool accounting treats over-release as empty.
    fn sub(self, rhs: ByteSize) -> ByteSize {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<ByteSize> for ByteSize {
    type Output = u64;
    /// How many times `rhs` fits into `self` (integer division).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: ByteSize) -> u64 {
        assert!(!rhs.is_zero(), "division by zero ByteSize");
        self.0 / rhs.0
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        ByteSize(bytes)
    }
}

impl From<usize> for ByteSize {
    fn from(bytes: usize) -> Self {
        ByteSize(bytes as u64)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [(&str, u64); 4] = [
            ("GiB", 1 << 30),
            ("MiB", 1 << 20),
            ("KiB", 1 << 10),
            ("B", 1),
        ];
        for (name, factor) in UNITS {
            if self.0 >= factor {
                return write!(f, "{:.1} {}", self.0 as f64 / factor as f64, name);
            }
        }
        write!(f, "0 B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors() {
        assert_eq!(ByteSize::from_kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::from_mib(1).as_u64(), 1 << 20);
        assert_eq!(ByteSize::from_gib(1).as_u64(), 1 << 30);
        assert!(ByteSize::ZERO.is_zero());
    }

    #[test]
    fn subtraction_saturates() {
        let small = ByteSize::new(10);
        let big = ByteSize::new(100);
        assert_eq!(small - big, ByteSize::ZERO);
        assert_eq!(small.checked_sub(big), None);
        assert_eq!(big.checked_sub(small), Some(ByteSize::new(90)));
    }

    #[test]
    fn scaled_fraction() {
        let total = ByteSize::from_gib(64);
        // 10% donation as in paper §IV-F.
        assert_eq!(total.scaled(0.10), ByteSize::new(6871947673));
        assert_eq!(total.scaled(0.0), ByteSize::ZERO);
    }

    #[test]
    fn pages_rounds_up() {
        assert_eq!(ByteSize::new(4096).pages(4096), 1);
        assert_eq!(ByteSize::new(4097).pages(4096), 2);
        assert_eq!(ByteSize::ZERO.pages(4096), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::new(512).to_string(), "512.0 B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.0 KiB");
        assert_eq!(ByteSize::from_mib(3).to_string(), "3.0 MiB");
        assert_eq!(ByteSize::ZERO.to_string(), "0 B");
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = ByteSize::new(1) / ByteSize::ZERO;
    }

    #[test]
    fn sum_of_sizes() {
        let total: ByteSize = (1..=4).map(ByteSize::from_kib).sum();
        assert_eq!(total, ByteSize::from_kib(10));
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in 0u64..1 << 40, b in 0u64..1 << 40) {
            let (a, b) = (ByteSize::new(a), ByteSize::new(b));
            prop_assert_eq!((a + b) - b, a);
        }

        #[test]
        fn prop_sub_never_underflows(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let d = ByteSize::new(a) - ByteSize::new(b);
            prop_assert!(d.as_u64() <= a);
        }

        #[test]
        fn prop_pages_covers_size(sz in 0u64..1 << 32) {
            let pages = ByteSize::new(sz).pages(4096);
            prop_assert!(pages * 4096 >= sz);
            prop_assert!(pages == 0 || (pages - 1) * 4096 < sz);
        }

        #[test]
        fn prop_scaled_monotone(sz in 0u64..1 << 40, r1 in 0.0f64..1.0, r2 in 0.0f64..1.0) {
            let s = ByteSize::new(sz);
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            prop_assert!(s.scaled(lo) <= s.scaled(hi));
        }
    }
}
