//! The crate-family error type.

use crate::{EntryId, NodeId, ServerId};
use std::error::Error;
use std::fmt;

/// Convenient result alias used across the workspace.
pub type DmemResult<T> = Result<T, DmemError>;

/// Errors surfaced by the disaggregated memory system.
///
/// Every fallible public operation in the workspace returns this type so
/// that callers handle one error domain (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DmemError {
    /// No free capacity in the requested pool and no further tier to spill to.
    CapacityExhausted {
        /// Human-readable name of the exhausted pool.
        pool: String,
    },
    /// The requested entry is not present in any tier.
    EntryNotFound(EntryId),
    /// The target node is down or unreachable.
    NodeUnavailable(NodeId),
    /// The target virtual server has failed.
    ServerUnavailable(ServerId),
    /// The network link or connection between two nodes is down.
    LinkDown {
        /// Source node of the failed connection.
        from: NodeId,
        /// Destination node of the failed connection.
        to: NodeId,
    },
    /// An RDMA operation referenced an unregistered or deregistered region.
    RegionNotRegistered,
    /// An RDMA access fell outside the bounds of its memory region.
    RegionOutOfBounds {
        /// Requested offset within the region.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual region capacity.
        capacity: u64,
    },
    /// A remote-key check failed (wrong rkey for the region).
    AccessDenied,
    /// A replicated write could not reach the required number of replicas
    /// and was rolled back ("all or nothing", paper §IV-D).
    ReplicationFailed {
        /// Replicas the write was able to reach.
        reached: usize,
        /// Replication degree that was required.
        required: usize,
    },
    /// An operation timed out (e.g. leader handshake, paper §IV-C).
    Timeout {
        /// What the caller was waiting for.
        what: String,
    },
    /// Stored payload failed integrity verification after decompression
    /// or transfer.
    Corrupt(EntryId),
    /// A configuration value is invalid.
    InvalidConfig {
        /// Explanation of the rejected value.
        reason: String,
    },
    /// The group has no eligible leader (all members down).
    NoLeader,
    /// The operation is not supported by this backend or tier.
    Unsupported {
        /// The unsupported operation.
        op: String,
    },
    /// A CXL pool node is in an outage window: loads, stores and remote
    /// atomics against it fail until the node recovers (reads fail over
    /// to the entry's shadow copy; atomics have no failover target).
    CxlPoolNodeDown {
        /// Index of the unreachable pool node.
        pool_node: u16,
    },
}

impl fmt::Display for DmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmemError::CapacityExhausted { pool } => {
                write!(f, "capacity exhausted in pool {pool}")
            }
            DmemError::EntryNotFound(id) => write!(f, "entry {id} not found"),
            DmemError::NodeUnavailable(n) => write!(f, "{n} unavailable"),
            DmemError::ServerUnavailable(s) => write!(f, "{s} unavailable"),
            DmemError::LinkDown { from, to } => write!(f, "link down between {from} and {to}"),
            DmemError::RegionNotRegistered => write!(f, "memory region not registered"),
            DmemError::RegionOutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "access at offset {offset} len {len} exceeds region capacity {capacity}"
            ),
            DmemError::AccessDenied => write!(f, "remote key check failed"),
            DmemError::ReplicationFailed { reached, required } => write!(
                f,
                "replicated write reached {reached} of {required} replicas and was rolled back"
            ),
            DmemError::Timeout { what } => write!(f, "timed out waiting for {what}"),
            DmemError::Corrupt(id) => write!(f, "entry {id} failed integrity verification"),
            DmemError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            DmemError::NoLeader => write!(f, "no eligible group leader"),
            DmemError::Unsupported { op } => write!(f, "operation not supported: {op}"),
            DmemError::CxlPoolNodeDown { pool_node } => {
                write!(f, "cxl pool node {pool_node} unreachable")
            }
        }
    }
}

impl Error for DmemError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, ServerId};

    fn sample_entry() -> EntryId {
        EntryId::new(ServerId::new(NodeId::new(1), 0), 7)
    }

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors: Vec<DmemError> = vec![
            DmemError::CapacityExhausted {
                pool: "shared".into(),
            },
            DmemError::EntryNotFound(sample_entry()),
            DmemError::NodeUnavailable(NodeId::new(3)),
            DmemError::ServerUnavailable(ServerId::new(NodeId::new(0), 2)),
            DmemError::LinkDown {
                from: NodeId::new(0),
                to: NodeId::new(1),
            },
            DmemError::RegionNotRegistered,
            DmemError::RegionOutOfBounds {
                offset: 4096,
                len: 4096,
                capacity: 4096,
            },
            DmemError::AccessDenied,
            DmemError::ReplicationFailed {
                reached: 1,
                required: 3,
            },
            DmemError::Timeout {
                what: "leader handshake".into(),
            },
            DmemError::Corrupt(sample_entry()),
            DmemError::InvalidConfig {
                reason: "donation fraction above 1.0".into(),
            },
            DmemError::NoLeader,
            DmemError::Unsupported { op: "batch".into() },
            DmemError::CxlPoolNodeDown { pool_node: 2 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<DmemError>();
    }

    #[test]
    fn errors_compare_equal() {
        assert_eq!(
            DmemError::EntryNotFound(sample_entry()),
            DmemError::EntryNotFound(sample_entry())
        );
        assert_ne!(DmemError::NoLeader, DmemError::AccessDenied);
    }
}
