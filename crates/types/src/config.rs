//! Configuration for the disaggregated memory system.
//!
//! The defaults reflect the paper's testbed where one exists (32 nodes of
//! 64 GiB DRAM, 80 VMs, triple replication, 10% initial donation) scaled by
//! the caller to laptop-sized simulations.

use crate::{ByteSize, DmemError, DmemResult, SizeClass};
use std::fmt;

/// How much of its allocated memory a virtual server donates to the node
/// shared-memory pool (paper §IV-F: "It could be 10% initially and
/// proactively increase to 40% or reduce to zero").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DonationPolicy {
    /// Fraction donated at initialization.
    pub initial: f64,
    /// Lower bound the balloon controller may shrink the donation to.
    pub min: f64,
    /// Upper bound the balloon controller may grow the donation to.
    pub max: f64,
}

impl DonationPolicy {
    /// The paper's default: start at 10%, move within [0%, 40%].
    pub const fn paper_default() -> Self {
        DonationPolicy {
            initial: 0.10,
            min: 0.0,
            max: 0.40,
        }
    }

    /// A fixed donation fraction that never changes.
    pub const fn fixed(fraction: f64) -> Self {
        DonationPolicy {
            initial: fraction,
            min: fraction,
            max: fraction,
        }
    }

    /// Validates the invariants `0 <= min <= initial <= max <= 1`.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] when the bounds are out of order
    /// or outside `[0, 1]`.
    pub fn validate(&self) -> DmemResult<()> {
        let ordered = 0.0 <= self.min && self.min <= self.initial && self.initial <= self.max;
        if !ordered || self.max > 1.0 {
            return Err(DmemError::InvalidConfig {
                reason: format!(
                    "donation policy must satisfy 0 <= min <= initial <= max <= 1, got \
                     min={} initial={} max={}",
                    self.min, self.initial, self.max
                ),
            });
        }
        Ok(())
    }
}

impl Default for DonationPolicy {
    fn default() -> Self {
        DonationPolicy::paper_default()
    }
}

/// Replica-set placement policy for remote writes (paper §IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementStrategy {
    /// Uniform random choice among candidates.
    Random,
    /// Cycle through candidates.
    RoundRobin,
    /// Round robin weighted by advertised free memory.
    WeightedRoundRobin,
    /// Sample two candidates, pick the one with more free memory
    /// (Mitzenmacher's power of two choices, the paper's reference \[31\]).
    #[default]
    PowerOfTwoChoices,
}

impl fmt::Display for PlacementStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PlacementStrategy::Random => "random",
            PlacementStrategy::RoundRobin => "round-robin",
            PlacementStrategy::WeightedRoundRobin => "weighted-round-robin",
            PlacementStrategy::PowerOfTwoChoices => "power-of-two-choices",
        };
        f.write_str(name)
    }
}

/// Number of replicas for each remote data entry.
///
/// The paper adopts HDFS-style triple replica modularity (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicationFactor(usize);

impl ReplicationFactor {
    /// Triple replication, the paper's default.
    pub const TRIPLE: ReplicationFactor = ReplicationFactor(3);
    /// Single copy (no redundancy).
    pub const SINGLE: ReplicationFactor = ReplicationFactor(1);

    /// Creates a replication factor.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] if `n` is zero.
    pub fn new(n: usize) -> DmemResult<Self> {
        if n == 0 {
            return Err(DmemError::InvalidConfig {
                reason: "replication factor must be at least 1".into(),
            });
        }
        Ok(ReplicationFactor(n))
    }

    /// The replica count.
    pub const fn get(self) -> usize {
        self.0
    }
}

impl Default for ReplicationFactor {
    fn default() -> Self {
        ReplicationFactor::TRIPLE
    }
}

impl fmt::Display for ReplicationFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r={}", self.0)
    }
}

/// Page-compression mode (paper §IV-H / Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompressionMode {
    /// No compression: every page stored as a full 4 KiB.
    Off,
    /// Two size classes: {2 KiB, 4 KiB}.
    TwoGranularity,
    /// Four size classes: {512 B, 1 KiB, 2 KiB, 4 KiB} — FastSwap's default.
    #[default]
    FourGranularity,
}

impl CompressionMode {
    /// The size classes this mode may store pages in, ascending.
    pub fn classes(self) -> &'static [SizeClass] {
        match self {
            CompressionMode::Off => &[SizeClass::C4K],
            CompressionMode::TwoGranularity => &[SizeClass::C2K, SizeClass::C4K],
            CompressionMode::FourGranularity => &SizeClass::ALL,
        }
    }

    /// `true` when pages are compressed before storing.
    pub fn is_enabled(self) -> bool {
        !matches!(self, CompressionMode::Off)
    }
}

impl fmt::Display for CompressionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CompressionMode::Off => "off",
            CompressionMode::TwoGranularity => "2-granularity",
            CompressionMode::FourGranularity => "4-granularity",
        };
        f.write_str(name)
    }
}

/// The node-level vs cluster-level traffic split for FastSwap's swap-out
/// path (paper Fig. 8: FS-SM, FS-9:1, FS-7:3, FS-5:5, FS-RDMA).
///
/// The value is the fraction of swap traffic served by the node-coordinated
/// shared memory pool; the remainder goes to remote memory over RDMA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionRatio(f64);

impl DistributionRatio {
    /// FS-SM: 100% node-level shared memory.
    pub const FS_SM: DistributionRatio = DistributionRatio(1.0);
    /// FS-9:1: 90% shared memory, 10% remote.
    pub const FS_9_1: DistributionRatio = DistributionRatio(0.9);
    /// FS-7:3: 70% shared memory, 30% remote.
    pub const FS_7_3: DistributionRatio = DistributionRatio(0.7);
    /// FS-5:5: 50% shared memory, 50% remote.
    pub const FS_5_5: DistributionRatio = DistributionRatio(0.5);
    /// FS-RDMA: 100% remote memory.
    pub const FS_RDMA: DistributionRatio = DistributionRatio(0.0);

    /// Creates a ratio from the shared-memory fraction.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] unless `0 <= fraction <= 1`.
    pub fn new(shared_fraction: f64) -> DmemResult<Self> {
        if !(0.0..=1.0).contains(&shared_fraction) {
            return Err(DmemError::InvalidConfig {
                reason: format!("distribution ratio {shared_fraction} outside [0, 1]"),
            });
        }
        Ok(DistributionRatio(shared_fraction))
    }

    /// Fraction of traffic served from node shared memory.
    pub const fn shared_fraction(self) -> f64 {
        self.0
    }

    /// Fraction of traffic sent to remote memory.
    pub fn remote_fraction(self) -> f64 {
        1.0 - self.0
    }

    /// The five configurations evaluated in Fig. 8, in the paper's order.
    pub const FIG8_SWEEP: [DistributionRatio; 5] = [
        DistributionRatio::FS_SM,
        DistributionRatio::FS_9_1,
        DistributionRatio::FS_7_3,
        DistributionRatio::FS_5_5,
        DistributionRatio::FS_RDMA,
    ];
}

impl Default for DistributionRatio {
    fn default() -> Self {
        DistributionRatio::FS_SM
    }
}

impl fmt::Display for DistributionRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if (self.0 - 1.0).abs() < f64::EPSILON {
            write!(f, "FS-SM")
        } else if self.0.abs() < f64::EPSILON {
            write!(f, "FS-RDMA")
        } else {
            write!(f, "FS-{}:{}", (self.0 * 10.0).round(), (10.0 - self.0 * 10.0).round())
        }
    }
}

/// Swap-in strategy (paper §IV-H / Fig. 6 & 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwapInMode {
    /// Fetch exactly the faulted page (Infiniswap/Linux behaviour).
    Demand,
    /// Proactive batch swap-in: on a fault, also fetch the next
    /// `window - 1` contiguously swapped-out pages in one batched transfer.
    ProactiveBatch {
        /// Total pages fetched per fault, including the faulted one.
        window: usize,
    },
}

impl SwapInMode {
    /// Number of pages fetched per fault.
    pub fn window(self) -> usize {
        match self {
            SwapInMode::Demand => 1,
            SwapInMode::ProactiveBatch { window } => window.max(1),
        }
    }
}

impl Default for SwapInMode {
    fn default() -> Self {
        SwapInMode::ProactiveBatch { window: 8 }
    }
}

impl fmt::Display for SwapInMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapInMode::Demand => write!(f, "demand"),
            SwapInMode::ProactiveBatch { window } => write!(f, "pbs(w={window})"),
        }
    }
}

/// Per-virtual-server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// DRAM allocated to the server at initialization (fixed for its
    /// lifetime, as the paper observes is standard practice).
    pub memory: ByteSize,
    /// Donation policy for the node shared pool.
    pub donation: DonationPolicy,
}

impl ServerConfig {
    /// Creates a server configuration with the paper's default donation.
    pub fn new(memory: ByteSize) -> Self {
        ServerConfig {
            memory,
            donation: DonationPolicy::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] on zero memory or a bad
    /// donation policy.
    pub fn validate(&self) -> DmemResult<()> {
        if self.memory.is_zero() {
            return Err(DmemError::InvalidConfig {
                reason: "server memory must be nonzero".into(),
            });
        }
        self.donation.validate()
    }
}

/// Per-node configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Physical DRAM on the node.
    pub dram: ByteSize,
    /// Slab size used by the shared memory pool and RDMA buffer pools.
    pub slab_size: ByteSize,
    /// DRAM registered for the cluster-wide RDMA *send* buffer pool.
    pub send_pool: ByteSize,
    /// DRAM registered for the cluster-wide RDMA *receive* buffer pool
    /// (the memory this node donates to remote peers).
    pub recv_pool: ByteSize,
    /// Byte-addressable NVM installed on the node (the §VI emerging-memory
    /// tier; zero disables it). NVM is its own device, not part of DRAM.
    pub nvm_pool: ByteSize,
}

impl NodeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] if any size is zero or the
    /// buffer pools exceed the node's DRAM.
    pub fn validate(&self) -> DmemResult<()> {
        if self.dram.is_zero() || self.slab_size.is_zero() {
            return Err(DmemError::InvalidConfig {
                reason: "node dram and slab size must be nonzero".into(),
            });
        }
        if self.send_pool + self.recv_pool > self.dram {
            return Err(DmemError::InvalidConfig {
                reason: format!(
                    "rdma buffer pools ({} + {}) exceed node dram ({})",
                    self.send_pool, self.recv_pool, self.dram
                ),
            });
        }
        Ok(())
    }
}

impl Default for NodeConfig {
    /// A laptop-scale stand-in for the paper's 64 GiB nodes: 64 MiB DRAM,
    /// 1 MiB slabs, 4 MiB send / 8 MiB receive pools.
    fn default() -> Self {
        NodeConfig {
            dram: ByteSize::from_mib(64),
            slab_size: ByteSize::from_mib(1),
            send_pool: ByteSize::from_mib(4),
            recv_pool: ByteSize::from_mib(8),
            nvm_pool: ByteSize::ZERO,
        }
    }
}

/// Configuration of the CXL pooled-memory tier (ROADMAP item 4): a rack
/// of memory-pool nodes reachable by load/store through a CXL switch,
/// addressed PGAS-style and placed by consistent hashing.
///
/// Zero pool nodes (the default) disables the tier entirely: no pool is
/// constructed, no `cxl.*` metric keys exist, and every pre-CXL run is
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CxlPoolConfig {
    /// Memory-pool nodes behind the switch; zero disables the tier.
    pub pool_nodes: usize,
    /// Usable capacity per pool node.
    pub capacity_per_node: ByteSize,
}

impl CxlPoolConfig {
    /// The disabled tier: no pool nodes.
    pub const DISABLED: CxlPoolConfig = CxlPoolConfig {
        pool_nodes: 0,
        capacity_per_node: ByteSize::ZERO,
    };

    /// Creates a pool of `pool_nodes` nodes with `capacity_per_node` each.
    pub const fn new(pool_nodes: usize, capacity_per_node: ByteSize) -> Self {
        CxlPoolConfig {
            pool_nodes,
            capacity_per_node,
        }
    }

    /// `true` when the tier is configured.
    pub const fn enabled(&self) -> bool {
        self.pool_nodes > 0
    }

    /// Total pool capacity across all nodes.
    pub fn total(&self) -> ByteSize {
        self.capacity_per_node * self.pool_nodes as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] when pool nodes exist but have
    /// zero capacity, or the node count exceeds the 16-bit PGAS node field.
    pub fn validate(&self) -> DmemResult<()> {
        if self.pool_nodes > 0 && self.capacity_per_node.is_zero() {
            return Err(DmemError::InvalidConfig {
                reason: "cxl pool nodes must have nonzero capacity".into(),
            });
        }
        if self.pool_nodes > u16::MAX as usize {
            return Err(DmemError::InvalidConfig {
                reason: format!(
                    "cxl pool node count {} exceeds the 16-bit global-address field",
                    self.pool_nodes
                ),
            });
        }
        Ok(())
    }
}

impl Default for CxlPoolConfig {
    fn default() -> Self {
        CxlPoolConfig::DISABLED
    }
}

/// Whole-cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of physical nodes.
    pub nodes: usize,
    /// Virtual servers hosted per node.
    pub servers_per_node: usize,
    /// Node hardware configuration (uniform, like the paper's testbed).
    pub node: NodeConfig,
    /// Virtual server configuration (uniform allocation, the common
    /// practice the paper critiques).
    pub server: ServerConfig,
    /// Target group size for hierarchical group sharing (§IV-C).
    pub group_size: usize,
    /// Replication degree for remote entries.
    pub replication: ReplicationFactor,
    /// Replica placement policy.
    pub placement: PlacementStrategy,
    /// Page compression mode.
    pub compression: CompressionMode,
    /// CXL pooled-memory tier (disabled by default).
    pub cxl: CxlPoolConfig,
    /// Deterministic seed for all randomized choices.
    pub seed: u64,
}

impl ClusterConfig {
    /// A small, fast configuration for tests and examples: 4 nodes × 2
    /// servers.
    pub fn small() -> Self {
        ClusterConfig {
            nodes: 4,
            servers_per_node: 2,
            node: NodeConfig::default(),
            server: ServerConfig::new(ByteSize::from_mib(16)),
            group_size: 4,
            replication: ReplicationFactor::TRIPLE,
            placement: PlacementStrategy::PowerOfTwoChoices,
            compression: CompressionMode::FourGranularity,
            cxl: CxlPoolConfig::DISABLED,
            seed: 0x00D1_5A66,
        }
    }

    /// A scaled-down analogue of the paper's 32-node testbed.
    pub fn paper_testbed() -> Self {
        ClusterConfig {
            nodes: 32,
            servers_per_node: 3, // 96 ≈ the paper's 80 VMs, uniform per node
            node: NodeConfig::default(),
            server: ServerConfig::new(ByteSize::from_mib(16)),
            group_size: 8,
            replication: ReplicationFactor::TRIPLE,
            placement: PlacementStrategy::PowerOfTwoChoices,
            compression: CompressionMode::FourGranularity,
            cxl: CxlPoolConfig::DISABLED,
            seed: 0x00D1_5A66,
        }
    }

    /// Total number of virtual servers in the cluster.
    pub fn total_servers(&self) -> usize {
        self.nodes * self.servers_per_node
    }

    /// Validates every nested configuration plus cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] on any violated invariant, e.g.
    /// zero nodes, a group size of zero, replication degree exceeding the
    /// node count, or per-server allocations exceeding node DRAM.
    pub fn validate(&self) -> DmemResult<()> {
        if self.nodes == 0 || self.servers_per_node == 0 {
            return Err(DmemError::InvalidConfig {
                reason: "cluster must have at least one node and one server per node".into(),
            });
        }
        if self.group_size == 0 {
            return Err(DmemError::InvalidConfig {
                reason: "group size must be at least 1".into(),
            });
        }
        if self.replication.get() > self.nodes {
            return Err(DmemError::InvalidConfig {
                reason: format!(
                    "replication factor {} exceeds node count {}",
                    self.replication.get(),
                    self.nodes
                ),
            });
        }
        self.node.validate()?;
        self.server.validate()?;
        self.cxl.validate()?;
        let allocated = self.server.memory * self.servers_per_node as u64;
        if allocated + self.node.send_pool + self.node.recv_pool > self.node.dram {
            return Err(DmemError::InvalidConfig {
                reason: format!(
                    "per-node allocations ({} servers × {} + rdma pools) exceed dram {}",
                    self.servers_per_node, self.server.memory, self.node.dram
                ),
            });
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_configs_validate() {
        ClusterConfig::small().validate().unwrap();
        ClusterConfig::paper_testbed().validate().unwrap();
    }

    #[test]
    fn donation_policy_bounds_checked() {
        assert!(DonationPolicy::paper_default().validate().is_ok());
        assert!(DonationPolicy {
            initial: 0.5,
            min: 0.6,
            max: 0.7
        }
        .validate()
        .is_err());
        assert!(DonationPolicy {
            initial: 0.9,
            min: 0.0,
            max: 1.5
        }
        .validate()
        .is_err());
        assert!(DonationPolicy::fixed(0.25).validate().is_ok());
    }

    #[test]
    fn replication_factor_rejects_zero() {
        assert!(ReplicationFactor::new(0).is_err());
        assert_eq!(ReplicationFactor::new(3).unwrap(), ReplicationFactor::TRIPLE);
        assert_eq!(ReplicationFactor::default().get(), 3);
    }

    #[test]
    fn replication_cannot_exceed_nodes() {
        let mut cfg = ClusterConfig::small();
        cfg.nodes = 2;
        assert!(matches!(
            cfg.validate(),
            Err(DmemError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn distribution_ratio_constants() {
        assert_eq!(DistributionRatio::FS_SM.shared_fraction(), 1.0);
        assert_eq!(DistributionRatio::FS_RDMA.remote_fraction(), 1.0);
        assert_eq!(DistributionRatio::FS_7_3.to_string(), "FS-7:3");
        assert_eq!(DistributionRatio::FS_SM.to_string(), "FS-SM");
        assert_eq!(DistributionRatio::FS_RDMA.to_string(), "FS-RDMA");
        assert!(DistributionRatio::new(1.2).is_err());
        assert!(DistributionRatio::new(-0.1).is_err());
    }

    #[test]
    fn compression_mode_classes() {
        assert_eq!(CompressionMode::Off.classes(), &[SizeClass::C4K]);
        assert_eq!(CompressionMode::TwoGranularity.classes().len(), 2);
        assert_eq!(CompressionMode::FourGranularity.classes().len(), 4);
        assert!(!CompressionMode::Off.is_enabled());
        assert!(CompressionMode::FourGranularity.is_enabled());
    }

    #[test]
    fn swap_in_window() {
        assert_eq!(SwapInMode::Demand.window(), 1);
        assert_eq!(SwapInMode::ProactiveBatch { window: 8 }.window(), 8);
        assert_eq!(
            SwapInMode::ProactiveBatch { window: 0 }.window(),
            1,
            "degenerate window clamps to demand paging"
        );
    }

    #[test]
    fn cxl_pool_config_validates() {
        assert!(!CxlPoolConfig::DISABLED.enabled());
        assert!(CxlPoolConfig::DISABLED.validate().is_ok());
        let pool = CxlPoolConfig::new(4, ByteSize::from_kib(256));
        assert!(pool.enabled());
        assert_eq!(pool.total(), ByteSize::from_mib(1));
        assert!(pool.validate().is_ok());
        assert!(CxlPoolConfig::new(2, ByteSize::ZERO).validate().is_err());
        assert!(
            CxlPoolConfig::new(1 << 17, ByteSize::from_kib(4)).validate().is_err(),
            "node count must fit the 16-bit PGAS field"
        );
        let mut cfg = ClusterConfig::small();
        cfg.cxl = pool;
        cfg.validate().unwrap();
    }

    #[test]
    fn oversubscribed_node_rejected() {
        let mut cfg = ClusterConfig::small();
        cfg.server.memory = ByteSize::from_gib(1);
        assert!(cfg.validate().is_err());
    }

    proptest! {
        #[test]
        fn prop_distribution_fractions_sum_to_one(f in 0.0f64..=1.0) {
            let r = DistributionRatio::new(f).unwrap();
            prop_assert!((r.shared_fraction() + r.remote_fraction() - 1.0).abs() < 1e-12);
        }
    }
}
