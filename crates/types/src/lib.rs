//! Core vocabulary types for the disaggregated memory system.
//!
//! This crate defines the identifiers, byte-size arithmetic, error type,
//! data-entry locations and configuration shared by every other crate in the
//! workspace. It deliberately has no dependency on the simulation substrate
//! so that the domain model stays free of mechanism.
//!
//! # Examples
//!
//! ```
//! use dmem_types::{ByteSize, NodeId, ServerId, PAGE_SIZE};
//!
//! let node = NodeId::new(3);
//! let server = ServerId::new(node, 0);
//! assert_eq!(server.node(), node);
//! assert_eq!(ByteSize::from_mib(1).as_u64(), 1024 * 1024);
//! assert_eq!(PAGE_SIZE, 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytesize;
mod checksum;
mod config;
mod error;
mod ids;
mod location;

pub use bytesize::ByteSize;
pub use checksum::checksum;
pub use config::{
    ClusterConfig, CompressionMode, CxlPoolConfig, DistributionRatio, DonationPolicy,
    NodeConfig, PlacementStrategy, ReplicationFactor, ServerConfig, SwapInMode,
};
pub use error::{DmemError, DmemResult};
pub use ids::{EntryId, GroupId, MrId, NodeId, PageId, QpId, ServerId, SlabId, TenantId};
pub use location::{EntryLocation, EntryRecord, SizeClass};

/// The system page size in bytes. The paper's systems (FastSwap, Infiniswap,
/// zswap) all operate on standard 4 KiB x86 pages.
pub const PAGE_SIZE: usize = 4096;
