//! Payload checksumming.

/// Computes the FNV-1a 64-bit hash of `bytes`.
///
/// Used as the integrity checksum stored in [`crate::EntryRecord`] and
/// verified after decompression or network transfer.
///
/// # Examples
///
/// ```
/// use dmem_types::checksum;
///
/// let a = checksum(b"page contents");
/// let b = checksum(b"page contents");
/// assert_eq!(a, b);
/// assert_ne!(a, checksum(b"tampered contents"));
/// ```
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_has_stable_offset_basis() {
        assert_eq!(checksum(&[]), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let mut data = vec![0u8; 4096];
        let before = checksum(&data);
        data[2048] ^= 1;
        assert_ne!(before, checksum(&data));
    }

    proptest! {
        #[test]
        fn prop_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(checksum(&data), checksum(&data));
        }

        #[test]
        fn prop_prefix_sensitivity(data in proptest::collection::vec(any::<u8>(), 1..512)) {
            // Appending a byte must change the hash (FNV never maps x and
            // x||b to the same value for our input sizes in practice).
            let mut longer = data.clone();
            longer.push(0xAB);
            prop_assert_ne!(checksum(&data), checksum(&longer));
        }
    }
}
