//! Data-entry locations and the records kept in disaggregated memory maps.

use crate::{ByteSize, NodeId, SlabId};
use std::fmt;

/// The storage size classes used by FastSwap's multi-granularity page
/// compression (paper §IV-H): a compressed 4 KiB page is stored in the
/// smallest class that fits it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, )]
pub enum SizeClass {
    /// 512-byte class.
    C512,
    /// 1 KiB class.
    C1K,
    /// 2 KiB class.
    C2K,
    /// 4 KiB class (uncompressed or incompressible pages).
    C4K,
}

impl SizeClass {
    /// All classes, ascending.
    pub const ALL: [SizeClass; 4] = [
        SizeClass::C512,
        SizeClass::C1K,
        SizeClass::C2K,
        SizeClass::C4K,
    ];

    /// The storage footprint of this class in bytes.
    pub const fn bytes(self) -> ByteSize {
        match self {
            SizeClass::C512 => ByteSize::new(512),
            SizeClass::C1K => ByteSize::new(1024),
            SizeClass::C2K => ByteSize::new(2048),
            SizeClass::C4K => ByteSize::new(4096),
        }
    }

    /// The smallest class that can hold `len` bytes, or `None` if `len`
    /// exceeds 4 KiB.
    pub fn fitting(len: usize) -> Option<SizeClass> {
        SizeClass::ALL
            .into_iter()
            .find(|c| c.bytes().as_u64() as usize >= len)
    }

    /// The smallest class from `allowed` that can hold `len` bytes.
    ///
    /// Used to restrict FastSwap to two granularities ({2 KiB, 4 KiB}) or
    /// four ({512 B, 1 KiB, 2 KiB, 4 KiB}).
    pub fn fitting_among(len: usize, allowed: &[SizeClass]) -> Option<SizeClass> {
        let mut sorted: Vec<SizeClass> = allowed.to_vec();
        sorted.sort();
        sorted
            .into_iter()
            .find(|c| c.bytes().as_u64() as usize >= len)
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeClass::C512 => write!(f, "512B"),
            SizeClass::C1K => write!(f, "1KiB"),
            SizeClass::C2K => write!(f, "2KiB"),
            SizeClass::C4K => write!(f, "4KiB"),
        }
    }
}

/// Where a data entry currently lives.
///
/// This is the per-entry metadata that the paper's scalability analysis
/// (§IV-C) sizes at ~8 bytes per 4 KiB entry; our richer representation is
/// still small and the group-size ablation reproduces the arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryLocation {
    /// In the node-coordinated shared memory pool of the owner's node.
    NodeShared {
        /// Slab holding the entry.
        slab: SlabId,
        /// Byte offset within the slab.
        offset: u64,
    },
    /// In the node's local byte-addressable NVM (the §VI extension tier).
    Nvm,
    /// Replicated in the remote memory of one or more cluster nodes.
    Remote {
        /// Nodes holding a replica; the first is the primary.
        replicas: Vec<NodeId>,
    },
    /// In the CXL pooled-memory tier, at a PGAS global address (raw
    /// `{pool_node, offset}` codec owned by `dmem-net`). A write-through
    /// shadow copy lives on the owner's disk tier so pool-node loss
    /// degrades to disk instead of losing the entry.
    Cxl {
        /// Raw 64-bit PGAS global address.
        addr: u64,
    },
    /// Spilled to the local external storage tier (disk), the last resort.
    Disk,
}

impl EntryLocation {
    /// `true` if the entry is served at DRAM speed (node shared memory).
    pub fn is_node_local(&self) -> bool {
        matches!(self, EntryLocation::NodeShared { .. })
    }

    /// `true` if the entry lives in remote cluster memory.
    pub fn is_remote(&self) -> bool {
        matches!(self, EntryLocation::Remote { .. })
    }

    /// `true` if the entry lives in local NVM.
    pub fn is_nvm(&self) -> bool {
        matches!(self, EntryLocation::Nvm)
    }

    /// `true` if the entry lives in the CXL pooled-memory tier.
    pub fn is_cxl(&self) -> bool {
        matches!(self, EntryLocation::Cxl { .. })
    }

    /// `true` if the entry was spilled to disk.
    pub fn is_disk(&self) -> bool {
        matches!(self, EntryLocation::Disk)
    }
}

impl fmt::Display for EntryLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryLocation::NodeShared { slab, offset } => {
                write!(f, "shared({slab}+{offset})")
            }
            EntryLocation::Remote { replicas } => {
                write!(f, "remote(")?;
                for (i, n) in replicas.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, ")")
            }
            EntryLocation::Nvm => write!(f, "nvm"),
            EntryLocation::Cxl { addr } => write!(f, "cxl({addr:#x})"),
            EntryLocation::Disk => write!(f, "disk"),
        }
    }
}

/// A full record in a virtual server's disaggregated memory map: location
/// plus the metadata needed to read the entry back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryRecord {
    /// Where the entry lives.
    pub location: EntryLocation,
    /// Uncompressed payload length in bytes.
    pub len: u64,
    /// Stored (possibly compressed) length in bytes.
    pub stored_len: u64,
    /// Compression size class, if the payload was compressed.
    pub class: Option<SizeClass>,
    /// Monotonic version for at-most-once/ordering checks (paper §IV-G).
    pub version: u64,
    /// Payload checksum for integrity verification.
    pub checksum: u64,
}

impl EntryRecord {
    /// Compression ratio achieved for this entry (uncompressed / stored).
    ///
    /// Returns 1.0 when nothing was saved or the entry is empty.
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_len == 0 || self.len == 0 {
            1.0
        } else {
            self.len as f64 / self.stored_len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn size_class_fitting_picks_smallest() {
        assert_eq!(SizeClass::fitting(0), Some(SizeClass::C512));
        assert_eq!(SizeClass::fitting(512), Some(SizeClass::C512));
        assert_eq!(SizeClass::fitting(513), Some(SizeClass::C1K));
        assert_eq!(SizeClass::fitting(4096), Some(SizeClass::C4K));
        assert_eq!(SizeClass::fitting(4097), None);
    }

    #[test]
    fn size_class_two_granularity() {
        let two = [SizeClass::C2K, SizeClass::C4K];
        assert_eq!(
            SizeClass::fitting_among(100, &two),
            Some(SizeClass::C2K),
            "2-granularity mode cannot use the 512B class"
        );
        assert_eq!(SizeClass::fitting_among(3000, &two), Some(SizeClass::C4K));
        assert_eq!(SizeClass::fitting_among(5000, &two), None);
    }

    #[test]
    fn location_predicates() {
        let shared = EntryLocation::NodeShared {
            slab: SlabId::new(1),
            offset: 0,
        };
        let remote = EntryLocation::Remote {
            replicas: vec![NodeId::new(1), NodeId::new(2)],
        };
        assert!(shared.is_node_local() && !shared.is_remote() && !shared.is_disk());
        assert!(remote.is_remote());
        assert!(EntryLocation::Disk.is_disk());
    }

    #[test]
    fn location_display() {
        let remote = EntryLocation::Remote {
            replicas: vec![NodeId::new(1), NodeId::new(2)],
        };
        assert_eq!(remote.to_string(), "remote(node-1,node-2)");
        assert_eq!(EntryLocation::Disk.to_string(), "disk");
        assert_eq!(EntryLocation::Cxl { addr: 0x10 }.to_string(), "cxl(0x10)");
        assert!(EntryLocation::Cxl { addr: 0 }.is_cxl());
    }

    #[test]
    fn record_compression_ratio() {
        let rec = EntryRecord {
            location: EntryLocation::Disk,
            len: 4096,
            stored_len: 1024,
            class: Some(SizeClass::C1K),
            version: 1,
            checksum: 0,
        };
        assert!((rec.compression_ratio() - 4.0).abs() < 1e-9);
        let empty = EntryRecord {
            stored_len: 0,
            ..rec
        };
        assert_eq!(empty.compression_ratio(), 1.0);
    }

    proptest! {
        #[test]
        fn prop_fitting_class_always_fits(len in 0usize..=4096) {
            let class = SizeClass::fitting(len).unwrap();
            prop_assert!(class.bytes().as_u64() as usize >= len);
        }

        #[test]
        fn prop_fitting_is_minimal(len in 1usize..=4096) {
            let class = SizeClass::fitting(len).unwrap();
            for smaller in SizeClass::ALL.into_iter().filter(|c| c < &class) {
                prop_assert!((smaller.bytes().as_u64() as usize) < len);
            }
        }
    }
}
