//! Strongly-typed identifiers.
//!
//! Every participant in the disaggregated memory system — physical nodes,
//! virtual servers, memory slabs, RDMA resources, data entries — is named by
//! a newtype so that the compiler rules out cross-wiring (C-NEWTYPE).

use std::fmt;

/// Identifier of a physical node (machine) in the cluster.
///
/// # Examples
///
/// ```
/// use dmem_types::NodeId;
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// assert!(a < b);
/// assert_eq!(a.to_string(), "node-0");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from its cluster index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw cluster index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

/// Identifier of a virtual server (VM, container, or JVM executor) hosted on
/// a particular node.
///
/// The paper treats all three virtualization flavours uniformly; so do we.
///
/// # Examples
///
/// ```
/// use dmem_types::{NodeId, ServerId};
/// let s = ServerId::new(NodeId::new(2), 5);
/// assert_eq!(s.node().index(), 2);
/// assert_eq!(s.local_index(), 5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct ServerId {
    node: NodeId,
    local: u32,
}

impl ServerId {
    /// Creates a server identifier from its hosting node and a per-node index.
    pub const fn new(node: NodeId, local: u32) -> Self {
        ServerId { node, local }
    }

    /// The node hosting this virtual server.
    pub const fn node(self) -> NodeId {
        self.node
    }

    /// The index of this server among the servers of its node.
    pub const fn local_index(self) -> u32 {
        self.local
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/vs-{}", self.node, self.local)
    }
}

/// Identifier of a 4 KiB page within a virtual server's address space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page identifier from a page frame number.
    pub const fn new(pfn: u64) -> Self {
        PageId(pfn)
    }

    /// Returns the page frame number.
    pub const fn pfn(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn-{:#x}", self.0)
    }
}

impl From<u64> for PageId {
    fn from(pfn: u64) -> Self {
        PageId(pfn)
    }
}

/// Identifier of a memory slab inside a shared-memory pool or an
/// RDMA-registered buffer pool.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SlabId(u64);

impl SlabId {
    /// Creates a slab identifier.
    pub const fn new(raw: u64) -> Self {
        SlabId(raw)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SlabId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slab-{}", self.0)
    }
}

/// Identifier of a data entry tracked by a virtual server's disaggregated
/// memory map: a swapped-out page, a cached RDD partition, or a key-value
/// item, depending on the client system.
///
/// Entries are namespaced by their owning server so that two servers may use
/// the same key without collision.
///
/// # Examples
///
/// ```
/// use dmem_types::{EntryId, NodeId, ServerId};
/// let owner = ServerId::new(NodeId::new(0), 1);
/// let e = EntryId::new(owner, 42);
/// assert_eq!(e.owner(), owner);
/// assert_eq!(e.key(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct EntryId {
    owner: ServerId,
    key: u64,
}

impl EntryId {
    /// Creates an entry identifier owned by `owner` with caller-chosen `key`.
    pub const fn new(owner: ServerId, key: u64) -> Self {
        EntryId { owner, key }
    }

    /// The virtual server that owns this entry.
    pub const fn owner(self) -> ServerId {
        self.owner
    }

    /// The caller-chosen key (e.g. a page frame number or partition id).
    pub const fn key(self) -> u64 {
        self.key
    }
}

impl fmt::Display for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.owner, self.key)
    }
}

/// Identifier of a tenant: an isolation domain owning virtual servers and
/// subject to QoS policy (quota, priority, SLO).
///
/// Tenant `0` is the *system tenant*: the implicit owner of every server
/// that was never explicitly assigned, so single-tenant deployments and all
/// pre-QoS callers keep working unchanged.
///
/// # Examples
///
/// ```
/// use dmem_types::TenantId;
/// assert!(TenantId::SYSTEM.is_system());
/// let t = TenantId::new(3);
/// assert!(!t.is_system());
/// assert_eq!(t.to_string(), "tenant-3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct TenantId(u32);

impl TenantId {
    /// The implicit default tenant owning all unassigned servers.
    pub const SYSTEM: TenantId = TenantId(0);

    /// Creates a tenant identifier from its registry index.
    pub const fn new(index: u32) -> Self {
        TenantId(index)
    }

    /// Returns the raw registry index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Whether this is the implicit system tenant.
    pub const fn is_system(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

impl From<u32> for TenantId {
    fn from(index: u32) -> Self {
        TenantId(index)
    }
}

/// Identifier of a node group in the hierarchical group-sharing model
/// (paper §IV-C).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct GroupId(u32);

impl GroupId {
    /// Creates a group identifier.
    pub const fn new(raw: u32) -> Self {
        GroupId(raw)
    }

    /// Returns the raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group-{}", self.0)
    }
}

/// Identifier of a registered RDMA memory region.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct MrId(u64);

impl MrId {
    /// Creates a memory-region identifier.
    pub const fn new(raw: u64) -> Self {
        MrId(raw)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mr-{}", self.0)
    }
}

/// Identifier of a simulated RDMA queue pair.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct QpId(u64);

impl QpId {
    /// Creates a queue-pair identifier.
    pub const fn new(raw: u64) -> Self {
        QpId(raw)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for QpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip_and_order() {
        let a = NodeId::new(1);
        let b = NodeId::from(2);
        assert!(a < b);
        assert_eq!(b.index(), 2);
        assert_eq!(a.to_string(), "node-1");
    }

    #[test]
    fn server_id_carries_node() {
        let s = ServerId::new(NodeId::new(7), 3);
        assert_eq!(s.node(), NodeId::new(7));
        assert_eq!(s.local_index(), 3);
        assert_eq!(s.to_string(), "node-7/vs-3");
    }

    #[test]
    fn entry_ids_namespaced_by_owner() {
        let s1 = ServerId::new(NodeId::new(0), 0);
        let s2 = ServerId::new(NodeId::new(0), 1);
        assert_ne!(EntryId::new(s1, 9), EntryId::new(s2, 9));
        assert_eq!(EntryId::new(s1, 9), EntryId::new(s1, 9));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for i in 0..100 {
            set.insert(PageId::new(i));
        }
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn display_is_never_empty() {
        assert!(!SlabId::new(0).to_string().is_empty());
        assert!(!GroupId::new(0).to_string().is_empty());
        assert!(!MrId::new(0).to_string().is_empty());
        assert!(!QpId::new(0).to_string().is_empty());
        assert!(!PageId::new(0).to_string().is_empty());
    }

    #[test]
    fn tenant_id_defaults_to_system() {
        assert_eq!(TenantId::default(), TenantId::SYSTEM);
        assert!(TenantId::SYSTEM.is_system());
        assert!(!TenantId::new(1).is_system());
        assert_eq!(TenantId::from(5).index(), 5);
        assert_eq!(TenantId::new(5).to_string(), "tenant-5");
        assert!(TenantId::new(1) < TenantId::new(2));
    }

    #[test]
    fn entry_id_display_identifies_owner_and_key() {
        let e = EntryId::new(ServerId::new(NodeId::new(4), 2), 77);
        let text = e.to_string();
        assert!(text.contains("#77"), "key missing from {text}");
        assert_ne!(
            text,
            EntryId::new(ServerId::new(NodeId::new(4), 3), 77).to_string(),
            "distinct owners must render distinctly"
        );
    }
}
