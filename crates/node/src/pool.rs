//! The size-class slab allocator backing the node shared memory pool.
//!
//! The pool's capacity is the sum of server donations (it grows and
//! shrinks as the balloon controller adjusts fractions). Memory is carved
//! into fixed-size slabs; each slab is dedicated to one [`SizeClass`] and
//! split into equal blocks, exactly like the slab-class layout FastSwap
//! inherits from memcached-style allocators. Compressed pages therefore
//! occupy their class footprint, which is what makes the Fig. 3
//! compression-ratio accounting physical.

use dmem_types::{ByteSize, DmemError, DmemResult, SizeClass, SlabId};
use std::collections::HashMap;
use std::fmt;

/// A reference to an allocated block: slab plus byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRef {
    /// The slab containing the block.
    pub slab: SlabId,
    /// Byte offset of the block within the slab.
    pub offset: u64,
}

#[derive(Debug)]
struct Slab {
    class: SizeClass,
    buf: Vec<u8>,
    free: Vec<u32>,   // free block indices
    live: usize,      // allocated block count
}

impl Slab {
    fn new(class: SizeClass, slab_size: usize) -> Self {
        let block = class.bytes().as_u64() as usize;
        let blocks = slab_size / block;
        Slab {
            class,
            buf: vec![0; blocks * block],
            free: (0..blocks as u32).rev().collect(),
            live: 0,
        }
    }

    fn block_size(&self) -> usize {
        self.class.bytes().as_u64() as usize
    }
}

/// Aggregate pool statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Configured capacity (total donations).
    pub capacity: ByteSize,
    /// Bytes held by carved slabs.
    pub slab_bytes: ByteSize,
    /// Bytes of live blocks (class footprints).
    pub live_bytes: ByteSize,
    /// Live allocations.
    pub live_blocks: usize,
    /// Carved slabs.
    pub slabs: usize,
}

impl PoolStats {
    /// Fraction of capacity held in live blocks.
    pub fn utilization(&self) -> f64 {
        if self.capacity.is_zero() {
            0.0
        } else {
            self.live_bytes.as_u64() as f64 / self.capacity.as_u64() as f64
        }
    }
}

/// The node shared-memory pool.
///
/// Purely an allocator plus storage: time costs are charged by
/// [`crate::NodeManager`], and eviction policy lives with the caller.
#[derive(Debug)]
pub struct SharedMemoryPool {
    slab_size: usize,
    capacity: ByteSize,
    slabs: HashMap<SlabId, Slab>,
    next_slab: u64,
    live_blocks: usize,
}

impl SharedMemoryPool {
    /// Creates a pool with the given slab size and initial capacity.
    ///
    /// # Panics
    ///
    /// Panics if `slab_size` is smaller than the largest size class
    /// (4 KiB) — such slabs could never hold a raw page.
    pub fn new(slab_size: ByteSize, capacity: ByteSize) -> Self {
        assert!(
            slab_size.as_u64() >= SizeClass::C4K.bytes().as_u64(),
            "slab size must hold at least one 4 KiB block"
        );
        SharedMemoryPool {
            slab_size: slab_size.as_usize(),
            capacity,
            slabs: HashMap::new(),
            next_slab: 1,
            live_blocks: 0,
        }
    }

    /// Current capacity (the donation total).
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Adjusts capacity (called when donations change). Shrinking below
    /// the currently carved slab bytes is allowed; the pool simply stops
    /// carving new slabs until usage falls back under the limit.
    pub fn set_capacity(&mut self, capacity: ByteSize) {
        self.capacity = capacity;
    }

    /// Allocates a block of `class`, writing `data` into it.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::CapacityExhausted`] when no free block exists
    /// and carving another slab would exceed capacity, and
    /// [`DmemError::InvalidConfig`] if `data` exceeds the class footprint.
    pub fn alloc(&mut self, class: SizeClass, data: &[u8]) -> DmemResult<BlockRef> {
        if data.len() > class.bytes().as_u64() as usize {
            return Err(DmemError::InvalidConfig {
                reason: format!("{} bytes do not fit class {class}", data.len()),
            });
        }
        // Find a slab of this class with a free block.
        let slab_id = self
            .slabs
            .iter()
            .find(|(_, s)| s.class == class && !s.free.is_empty())
            .map(|(id, _)| *id);
        let slab_id = match slab_id {
            Some(id) => id,
            None => self.carve_slab(class)?,
        };
        let slab = self.slabs.get_mut(&slab_id).expect("slab exists");
        let index = slab.free.pop().expect("slab has a free block");
        let offset = index as u64 * slab.block_size() as u64;
        let start = offset as usize;
        let block_size = slab.block_size();
        slab.buf[start..start + data.len()].copy_from_slice(data);
        // Zero the tail so stale bytes never leak across entries.
        slab.buf[start + data.len()..start + block_size].fill(0);
        slab.live += 1;
        self.live_blocks += 1;
        Ok(BlockRef {
            slab: slab_id,
            offset,
        })
    }

    fn carve_slab(&mut self, class: SizeClass) -> DmemResult<SlabId> {
        let carved: u64 = self.slabs.len() as u64 * self.slab_size as u64;
        if carved + self.slab_size as u64 > self.capacity.as_u64() {
            return Err(DmemError::CapacityExhausted {
                pool: "node shared memory".into(),
            });
        }
        let id = SlabId::new(self.next_slab);
        self.next_slab += 1;
        self.slabs.insert(id, Slab::new(class, self.slab_size));
        Ok(id)
    }

    /// Reads `len` bytes from a block.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::RegionNotRegistered`] for an unknown slab and
    /// [`DmemError::RegionOutOfBounds`] for a bad offset/length.
    pub fn read(&self, block: BlockRef, len: usize) -> DmemResult<Vec<u8>> {
        let slab = self
            .slabs
            .get(&block.slab)
            .ok_or(DmemError::RegionNotRegistered)?;
        let start = block.offset as usize;
        if start + len > slab.buf.len() || len > slab.block_size() {
            return Err(DmemError::RegionOutOfBounds {
                offset: block.offset,
                len: len as u64,
                capacity: slab.buf.len() as u64,
            });
        }
        Ok(slab.buf[start..start + len].to_vec())
    }

    /// Frees a block. Fully free slabs are returned to the pool (so a
    /// shrunken capacity takes effect).
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::RegionNotRegistered`] for an unknown slab.
    pub fn free(&mut self, block: BlockRef) -> DmemResult<()> {
        let slab = self
            .slabs
            .get_mut(&block.slab)
            .ok_or(DmemError::RegionNotRegistered)?;
        let index = (block.offset / slab.block_size() as u64) as u32;
        debug_assert!(!slab.free.contains(&index), "double free of {block:?}");
        slab.free.push(index);
        slab.live -= 1;
        self.live_blocks -= 1;
        if slab.live == 0 {
            self.slabs.remove(&block.slab);
        }
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        let slab_bytes = ByteSize::from(self.slabs.len() * self.slab_size);
        let live_bytes: u64 = self
            .slabs
            .values()
            .map(|s| s.live as u64 * s.block_size() as u64)
            .sum();
        PoolStats {
            capacity: self.capacity,
            slab_bytes,
            live_bytes: ByteSize::new(live_bytes),
            live_blocks: self.live_blocks,
            slabs: self.slabs.len(),
        }
    }

    /// `true` if a block of `class` could be allocated right now.
    pub fn can_fit(&self, class: SizeClass) -> bool {
        self.slabs
            .values()
            .any(|s| s.class == class && !s.free.is_empty())
            || (self.slabs.len() + 1) * self.slab_size <= self.capacity.as_u64() as usize
    }
}

impl fmt::Display for SharedMemoryPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "pool {}/{} live in {} slabs",
            s.live_bytes, s.capacity, s.slabs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pool(capacity_kib: u64) -> SharedMemoryPool {
        SharedMemoryPool::new(ByteSize::from_kib(16), ByteSize::from_kib(capacity_kib))
    }

    #[test]
    fn alloc_read_roundtrip() {
        let mut p = pool(64);
        let b = p.alloc(SizeClass::C1K, b"data").unwrap();
        assert_eq!(p.read(b, 4).unwrap(), b"data");
        // Tail of the block is zeroed.
        assert_eq!(p.read(b, 1024).unwrap()[4..], vec![0u8; 1020]);
    }

    #[test]
    fn blocks_of_same_class_share_slab() {
        let mut p = pool(64);
        let a = p.alloc(SizeClass::C512, b"a").unwrap();
        let b = p.alloc(SizeClass::C512, b"b").unwrap();
        assert_eq!(a.slab, b.slab);
        assert_ne!(a.offset, b.offset);
        assert_eq!(p.stats().slabs, 1);
    }

    #[test]
    fn classes_use_distinct_slabs() {
        let mut p = pool(64);
        let a = p.alloc(SizeClass::C512, b"a").unwrap();
        let b = p.alloc(SizeClass::C4K, b"b").unwrap();
        assert_ne!(a.slab, b.slab);
    }

    #[test]
    fn capacity_enforced() {
        let mut p = pool(16); // exactly one slab
        let _ = p.alloc(SizeClass::C4K, b"x").unwrap();
        // Second class would need a second slab: over capacity.
        assert!(matches!(
            p.alloc(SizeClass::C512, b"y"),
            Err(DmemError::CapacityExhausted { .. })
        ));
        // Same class still fits: the slab has free blocks.
        assert!(p.alloc(SizeClass::C4K, b"z").is_ok());
    }

    #[test]
    fn slab_exhaustion_rolls_to_new_slab() {
        let mut p = pool(48);
        // 16 KiB slab holds 4 × 4 KiB blocks.
        let blocks: Vec<_> = (0..5)
            .map(|_| p.alloc(SizeClass::C4K, b"x").unwrap())
            .collect();
        assert_eq!(p.stats().slabs, 2);
        assert_ne!(blocks[0].slab, blocks[4].slab);
    }

    #[test]
    fn free_releases_and_reclaims_slab() {
        let mut p = pool(16);
        let b = p.alloc(SizeClass::C4K, b"x").unwrap();
        p.free(b).unwrap();
        assert_eq!(p.stats().slabs, 0);
        assert_eq!(p.stats().live_blocks, 0);
        // Freed capacity can be reused by a different class now.
        assert!(p.alloc(SizeClass::C512, b"y").is_ok());
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut p = pool(64);
        assert!(matches!(
            p.alloc(SizeClass::C512, &[0u8; 513]),
            Err(DmemError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn read_bad_block_rejected() {
        let p = pool(64);
        let bogus = BlockRef {
            slab: SlabId::new(99),
            offset: 0,
        };
        assert_eq!(p.read(bogus, 1), Err(DmemError::RegionNotRegistered));
    }

    #[test]
    fn shrink_capacity_blocks_new_slabs() {
        let mut p = pool(64);
        let block = p.alloc(SizeClass::C4K, b"x").unwrap();
        p.set_capacity(ByteSize::from_kib(16));
        assert!(p.alloc(SizeClass::C512, b"y").is_err(), "no room for 2nd slab");
        p.free(block).unwrap();
        assert!(p.alloc(SizeClass::C512, b"y").is_ok());
    }

    #[test]
    fn utilization_and_can_fit() {
        let mut p = pool(16);
        assert_eq!(p.stats().utilization(), 0.0);
        assert!(p.can_fit(SizeClass::C4K));
        for _ in 0..4 {
            p.alloc(SizeClass::C4K, b"x").unwrap();
        }
        assert!(!p.can_fit(SizeClass::C4K));
        assert!((p.stats().utilization() - 1.0).abs() < 1e-9);
        assert!(!p.to_string().is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_alloc_free_conserves(ops in proptest::collection::vec((0usize..4, any::<bool>()), 1..100)) {
            let mut p = pool(256);
            let mut live: Vec<(BlockRef, usize)> = Vec::new();
            for (class_idx, is_alloc) in ops {
                let class = SizeClass::ALL[class_idx];
                if is_alloc || live.is_empty() {
                    if let Ok(b) = p.alloc(class, &[7u8; 64]) {
                        live.push((b, 64));
                    }
                } else {
                    let (b, _) = live.swap_remove(0);
                    p.free(b).unwrap();
                }
                prop_assert_eq!(p.stats().live_blocks, live.len());
                prop_assert!(p.stats().slab_bytes <= ByteSize::from_kib(256));
            }
            for (b, len) in &live {
                prop_assert_eq!(p.read(*b, *len).unwrap(), vec![7u8; 64]);
            }
        }
    }
}
