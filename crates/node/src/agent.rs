//! The per-server request path: LDMC → LDMS.
//!
//! In the paper's architecture (Fig. 1) each virtual server runs a *local
//! disaggregated memory client* (LDMC) that forwards put/get requests to
//! the node's *local disaggregated memory server* (LDMS), which in turn
//! coordinates with the node manager for slab space. Here the LDMS role is
//! served by [`NodeManager`]; [`LocalDmc`] is the typed per-server handle
//! that namespaces keys and enforces ownership.

use crate::manager::NodeManager;
use dmem_types::{DmemResult, EntryId, ServerId, SizeClass};
use std::fmt;
use std::sync::Arc;

/// A virtual server's client handle onto its node's shared memory pool.
#[derive(Clone)]
pub struct LocalDmc {
    server: ServerId,
    manager: Arc<NodeManager>,
}

impl LocalDmc {
    /// Creates a client for `server` backed by its node's manager.
    ///
    /// # Panics
    ///
    /// Panics if `server` is not hosted on the manager's node — the LDMC
    /// can only talk to its own node's LDMS.
    pub fn new(server: ServerId, manager: Arc<NodeManager>) -> Self {
        assert_eq!(
            server.node(),
            manager.node(),
            "LDMC must connect to its own node's manager"
        );
        LocalDmc { server, manager }
    }

    /// The owning virtual server.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// The entry id this client uses for `key`.
    pub fn entry_id(&self, key: u64) -> EntryId {
        EntryId::new(self.server, key)
    }

    /// Stores `data` under `key` in the node shared pool.
    ///
    /// # Errors
    ///
    /// Propagates [`NodeManager::put`] errors, notably
    /// [`dmem_types::DmemError::CapacityExhausted`] when the pool is full.
    pub fn put(&self, key: u64, data: Vec<u8>, class: SizeClass) -> DmemResult<()> {
        self.manager.put(self.entry_id(key), data, class).map(|_| ())
    }

    /// Reads the entry stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`dmem_types::DmemError::EntryNotFound`] if absent.
    pub fn get(&self, key: u64) -> DmemResult<Vec<u8>> {
        self.manager.get(self.entry_id(key))
    }

    /// Deletes the entry stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`dmem_types::DmemError::EntryNotFound`] if absent.
    pub fn delete(&self, key: u64) -> DmemResult<()> {
        self.manager.delete(self.entry_id(key))
    }

    /// `true` if `key` is resident in the shared pool.
    pub fn contains(&self, key: u64) -> bool {
        self.manager.contains(self.entry_id(key))
    }
}

impl fmt::Debug for LocalDmc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalDmc")
            .field("server", &self.server)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::{CostModel, SimClock};
    use dmem_types::{ByteSize, DonationPolicy, NodeId};

    fn setup() -> (Arc<NodeManager>, LocalDmc) {
        let node = NodeId::new(0);
        let manager = Arc::new(NodeManager::new(
            node,
            ByteSize::from_kib(16),
            SimClock::new(),
            CostModel::paper_default(),
        ));
        let server = ServerId::new(node, 0);
        manager.register_server(server, ByteSize::from_mib(1), DonationPolicy::fixed(0.5));
        let ldmc = LocalDmc::new(server, Arc::clone(&manager));
        (manager, ldmc)
    }

    #[test]
    fn put_get_delete_via_client() {
        let (_, ldmc) = setup();
        ldmc.put(42, vec![1, 2, 3], SizeClass::C512).unwrap();
        assert!(ldmc.contains(42));
        assert_eq!(ldmc.get(42).unwrap(), vec![1, 2, 3]);
        ldmc.delete(42).unwrap();
        assert!(!ldmc.contains(42));
    }

    #[test]
    fn keys_namespaced_per_server() {
        let (manager, ldmc0) = setup();
        let server1 = ServerId::new(NodeId::new(0), 1);
        manager.register_server(server1, ByteSize::from_mib(1), DonationPolicy::fixed(0.5));
        let ldmc1 = LocalDmc::new(server1, Arc::clone(&manager));
        ldmc0.put(7, vec![0xA], SizeClass::C512).unwrap();
        ldmc1.put(7, vec![0xB], SizeClass::C512).unwrap();
        assert_eq!(ldmc0.get(7).unwrap(), vec![0xA]);
        assert_eq!(ldmc1.get(7).unwrap(), vec![0xB]);
    }

    #[test]
    #[should_panic(expected = "own node's manager")]
    fn cross_node_client_rejected() {
        let (manager, _) = setup();
        let foreign = ServerId::new(NodeId::new(9), 0);
        let _ = LocalDmc::new(foreign, manager);
    }

    #[test]
    fn entry_id_is_stable() {
        let (_, ldmc) = setup();
        assert_eq!(ldmc.entry_id(5), EntryId::new(ldmc.server(), 5));
    }
}
