//! The node manager: the LDMS side of node-level disaggregation.
//!
//! One [`NodeManager`] runs per physical node. It owns the shared memory
//! pool, the donation registry, and the node's disaggregated-memory page
//! table mapping entry ids to pool blocks. Virtual servers talk to it via
//! [`crate::LocalDmc`]; the cluster layer escalates to remote memory when
//! the manager reports [`DmemError::CapacityExhausted`].

use crate::donation::DonationRegistry;
use crate::pool::{BlockRef, PoolStats, SharedMemoryPool};
use dmem_sim::{CostModel, MetricsRegistry, SimClock, SimDuration, SimInstant};
use dmem_types::{
    ByteSize, DmemError, DmemResult, DonationPolicy, EntryId, NodeId, ServerId, SizeClass,
};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Ballooning recommendation for a virtual server (paper §IV-F policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalloonAdvice {
    /// No change recommended.
    Steady,
    /// The server overflows the shared pool frequently: balloon DRAM back
    /// to it by shrinking its donation (policy (2)).
    BalloonToServer,
    /// The node overflows to remote memory frequently: shrink the RDMA
    /// receive pool donated to remote peers (policy (1)).
    ShrinkRecvPool,
}

/// Outcome of [`NodeManager::apply_recommendation`]: the advice that was
/// computed and whether a donation adjustment was actually applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedBalloon {
    /// The recommendation that was consulted.
    pub advice: BalloonAdvice,
    /// `true` when a donation adjustment went through (it may still have
    /// been clamped to a no-op by a fixed donation policy).
    pub applied: bool,
    /// The server's donation fraction after the adjustment, when applied.
    pub fraction: Option<f64>,
}

/// Node-level statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStats {
    /// Pool allocator statistics.
    pub pool: PoolStats,
    /// Entries resident in the shared pool.
    pub entries: usize,
    /// Put operations served by the pool.
    pub shared_puts: u64,
    /// Puts that overflowed (pool full).
    pub overflows: u64,
}

#[derive(Debug, Clone, Copy)]
struct StoredEntry {
    block: BlockRef,
    len: usize,
    class: SizeClass,
}

struct Inner {
    pool: SharedMemoryPool,
    donations: DonationRegistry,
    page_table: HashMap<EntryId, StoredEntry>,
    by_server: HashMap<ServerId, HashSet<u64>>,
    /// Recent overflow timestamps per server, for balloon advice.
    overflow_log: HashMap<ServerId, VecDeque<SimInstant>>,
    /// Recent node-level remote escalations.
    remote_log: VecDeque<SimInstant>,
    advice_window: SimDuration,
    advice_threshold: usize,
    shared_puts: u64,
    overflows: u64,
}

/// The per-node coordinator of the shared memory pool.
pub struct NodeManager {
    node: NodeId,
    clock: SimClock,
    cost: CostModel,
    metrics: MetricsRegistry,
    inner: Mutex<Inner>,
}

impl NodeManager {
    /// Creates a manager with an empty pool carved into `slab_size` slabs.
    pub fn new(node: NodeId, slab_size: ByteSize, clock: SimClock, cost: CostModel) -> Self {
        NodeManager {
            node,
            clock,
            cost,
            metrics: MetricsRegistry::new(),
            inner: Mutex::new(Inner {
                pool: SharedMemoryPool::new(slab_size, ByteSize::ZERO),
                donations: DonationRegistry::new(),
                page_table: HashMap::new(),
                by_server: HashMap::new(),
                overflow_log: HashMap::new(),
                remote_log: VecDeque::new(),
                advice_window: SimDuration::from_millis(100),
                advice_threshold: 32,
                shared_puts: 0,
                overflows: 0,
            }),
        }
    }

    /// The node this manager coordinates.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The manager's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Configures the sliding window and count threshold used by
    /// [`NodeManager::balloon_advice`].
    pub fn set_advice_policy(&self, window: SimDuration, threshold: usize) {
        let mut inner = self.inner.lock();
        inner.advice_window = window;
        inner.advice_threshold = threshold.max(1);
    }

    /// Registers a virtual server; its donation immediately grows the pool.
    ///
    /// Returns the new pool capacity.
    pub fn register_server(
        &self,
        server: ServerId,
        allocated: ByteSize,
        policy: DonationPolicy,
    ) -> ByteSize {
        let mut inner = self.inner.lock();
        inner
            .donations
            .register(server, allocated, policy)
            .expect("validated policy");
        let capacity = inner.donations.total_donated();
        inner.pool.set_capacity(capacity);
        capacity
    }

    /// Removes a failed or departing server: its donation leaves the pool
    /// and all its entries are purged (local failure semantics, §IV-D:
    /// same as losing OS swap).
    ///
    /// Returns the number of purged entries.
    pub fn deregister_server(&self, server: ServerId) -> usize {
        let mut inner = self.inner.lock();
        inner.donations.deregister(server);
        let capacity = inner.donations.total_donated();
        inner.pool.set_capacity(capacity);
        let keys: Vec<u64> = inner
            .by_server
            .remove(&server)
            .map(|set| set.into_iter().collect())
            .unwrap_or_default();
        for key in &keys {
            let id = EntryId::new(server, *key);
            if let Some(stored) = inner.page_table.remove(&id) {
                let _ = inner.pool.free(stored.block);
            }
        }
        keys.len()
    }

    /// Stores `data` for `entry` in the shared pool at DRAM-class cost,
    /// returning the allocated block (recorded in the owner's memory map).
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::CapacityExhausted`] when the pool cannot fit
    /// the entry's class (the caller escalates to cluster level), or
    /// [`DmemError::InvalidConfig`] for payloads exceeding the class.
    pub fn put(&self, entry: EntryId, data: Vec<u8>, class: SizeClass) -> DmemResult<BlockRef> {
        let mut inner = self.inner.lock();
        // Replace semantics: free any previous block first.
        if let Some(old) = inner.page_table.remove(&entry) {
            let _ = inner.pool.free(old.block);
            inner
                .by_server
                .get_mut(&entry.owner())
                .map(|s| s.remove(&entry.key()));
        }
        let len = data.len();
        match inner.pool.alloc(class, &data) {
            Ok(block) => {
                inner
                    .page_table
                    .insert(entry, StoredEntry { block, len, class });
                inner
                    .by_server
                    .entry(entry.owner())
                    .or_default()
                    .insert(entry.key());
                inner.shared_puts += 1;
                drop(inner);
                self.clock.advance(self.cost.shared_memory.transfer(len));
                self.metrics.counter("node.put.shared").inc();
                Ok(block)
            }
            Err(e @ DmemError::CapacityExhausted { .. }) => {
                inner.overflows += 1;
                let now = self.clock.now();
                inner
                    .overflow_log
                    .entry(entry.owner())
                    .or_default()
                    .push_back(now);
                drop(inner);
                self.metrics.counter("node.put.overflow").inc();
                Err(e)
            }
            Err(other) => Err(other),
        }
    }

    /// Reads an entry back from the shared pool.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] if the entry is not resident.
    pub fn get(&self, entry: EntryId) -> DmemResult<Vec<u8>> {
        let inner = self.inner.lock();
        let stored = *inner
            .page_table
            .get(&entry)
            .ok_or(DmemError::EntryNotFound(entry))?;
        let data = inner.pool.read(stored.block, stored.len)?;
        drop(inner);
        self.clock
            .advance(self.cost.shared_memory.transfer(stored.len));
        self.metrics.counter("node.get.shared").inc();
        Ok(data)
    }

    /// The stored size class of an entry, if resident.
    pub fn class_of(&self, entry: EntryId) -> Option<SizeClass> {
        self.inner.lock().page_table.get(&entry).map(|s| s.class)
    }

    /// Removes an entry, freeing its block.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] if the entry is not resident.
    pub fn delete(&self, entry: EntryId) -> DmemResult<()> {
        let mut inner = self.inner.lock();
        let stored = inner
            .page_table
            .remove(&entry)
            .ok_or(DmemError::EntryNotFound(entry))?;
        inner.pool.free(stored.block)?;
        inner
            .by_server
            .get_mut(&entry.owner())
            .map(|s| s.remove(&entry.key()));
        Ok(())
    }

    /// `true` if the entry is resident in this node's shared pool.
    pub fn contains(&self, entry: EntryId) -> bool {
        self.inner.lock().page_table.contains_key(&entry)
    }

    /// Records that this node escalated a put to remote memory (used by
    /// the §IV-F policy (1) signal).
    pub fn record_remote_escalation(&self) {
        let now = self.clock.now();
        self.inner.lock().remote_log.push_back(now);
    }

    /// Adjusts a server's donation fraction (ballooning), resizing the
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::ServerUnavailable`] for unknown servers.
    pub fn adjust_donation(&self, server: ServerId, delta: f64) -> DmemResult<f64> {
        let mut inner = self.inner.lock();
        let fraction = inner.donations.adjust(server, delta)?;
        let capacity = inner.donations.total_donated();
        inner.pool.set_capacity(capacity);
        Ok(fraction)
    }

    /// Ballooning recommendation for `server`, per the §IV-F policies:
    /// frequent per-server overflows → balloon DRAM back to the server;
    /// frequent node-level remote escalations → shrink the receive pool.
    pub fn balloon_advice(&self, server: ServerId) -> BalloonAdvice {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let window = inner.advice_window;
        let threshold = inner.advice_threshold;
        let horizon = |log: &mut VecDeque<SimInstant>| {
            while let Some(&front) = log.front() {
                if now - front > window {
                    log.pop_front();
                } else {
                    break;
                }
            }
            log.len()
        };
        let server_overflows = inner
            .overflow_log
            .get_mut(&server)
            .map(&horizon)
            .unwrap_or(0);
        if server_overflows >= threshold {
            return BalloonAdvice::BalloonToServer;
        }
        let mut remote_log = std::mem::take(&mut inner.remote_log);
        let remote = horizon(&mut remote_log);
        inner.remote_log = remote_log;
        if remote >= threshold {
            BalloonAdvice::ShrinkRecvPool
        } else {
            BalloonAdvice::Steady
        }
    }

    /// Consults [`NodeManager::balloon_advice`] for `server` and *applies*
    /// it: [`BalloonAdvice::BalloonToServer`] shrinks the server's
    /// donation by `step` via [`NodeManager::adjust_donation`] (§IV-F
    /// policy (2), promoted from a returned recommendation to an acted-on
    /// path). Other advice leaves the donation untouched.
    pub fn apply_recommendation(&self, server: ServerId, step: f64) -> AppliedBalloon {
        let advice = self.balloon_advice(server);
        if advice == BalloonAdvice::BalloonToServer {
            match self.adjust_donation(server, -step) {
                Ok(fraction) => {
                    return AppliedBalloon {
                        advice,
                        applied: true,
                        fraction: Some(fraction),
                    }
                }
                Err(_) => {
                    return AppliedBalloon {
                        advice,
                        applied: false,
                        fraction: None,
                    }
                }
            }
        }
        AppliedBalloon {
            advice,
            applied: false,
            fraction: None,
        }
    }

    /// Node statistics snapshot.
    pub fn stats(&self) -> NodeStats {
        let inner = self.inner.lock();
        NodeStats {
            pool: inner.pool.stats(),
            entries: inner.page_table.len(),
            shared_puts: inner.shared_puts,
            overflows: inner.overflows,
        }
    }

    /// Current pool capacity (total donations).
    pub fn capacity(&self) -> ByteSize {
        self.inner.lock().pool.capacity()
    }
}

impl fmt::Debug for NodeManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("NodeManager")
            .field("node", &self.node)
            .field("entries", &stats.entries)
            .field("capacity", &stats.pool.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> NodeManager {
        NodeManager::new(
            NodeId::new(0),
            ByteSize::from_kib(16),
            SimClock::new(),
            CostModel::paper_default(),
        )
    }

    fn server(i: u32) -> ServerId {
        ServerId::new(NodeId::new(0), i)
    }

    fn entry(s: ServerId, k: u64) -> EntryId {
        EntryId::new(s, k)
    }

    #[test]
    fn donation_sets_capacity() {
        let m = manager();
        let cap = m.register_server(server(0), ByteSize::from_mib(1), DonationPolicy::fixed(0.25));
        assert_eq!(cap, ByteSize::from_mib(1).scaled(0.25));
        assert_eq!(m.capacity(), cap);
    }

    #[test]
    fn put_get_roundtrip_charges_time() {
        let m = manager();
        m.register_server(server(0), ByteSize::from_mib(1), DonationPolicy::fixed(0.5));
        let e = entry(server(0), 1);
        let t0 = m.clock.now();
        m.put(e, vec![9u8; 100], SizeClass::C512).unwrap();
        assert!(m.clock.now() > t0, "put charges shared-memory time");
        assert_eq!(m.get(e).unwrap(), vec![9u8; 100]);
        assert!(m.contains(e));
        assert_eq!(m.class_of(e), Some(SizeClass::C512));
    }

    #[test]
    fn put_replaces_existing() {
        let m = manager();
        m.register_server(server(0), ByteSize::from_mib(1), DonationPolicy::fixed(0.5));
        let e = entry(server(0), 1);
        m.put(e, vec![1u8; 10], SizeClass::C512).unwrap();
        m.put(e, vec![2u8; 20], SizeClass::C1K).unwrap();
        assert_eq!(m.get(e).unwrap(), vec![2u8; 20]);
        assert_eq!(m.stats().entries, 1);
    }

    #[test]
    fn overflow_reports_capacity_exhausted() {
        let m = manager();
        // 16 KiB donation = one slab = four 4 KiB blocks.
        m.register_server(server(0), ByteSize::from_kib(160), DonationPolicy::fixed(0.1));
        for k in 0..4 {
            m.put(entry(server(0), k), vec![0u8; 4096], SizeClass::C4K)
                .unwrap();
        }
        assert!(matches!(
            m.put(entry(server(0), 99), vec![0u8; 4096], SizeClass::C4K),
            Err(DmemError::CapacityExhausted { .. })
        ));
        assert_eq!(m.stats().overflows, 1);
    }

    #[test]
    fn delete_frees_space() {
        let m = manager();
        m.register_server(server(0), ByteSize::from_kib(160), DonationPolicy::fixed(0.1));
        let e = entry(server(0), 1);
        m.put(e, vec![1u8; 4096], SizeClass::C4K).unwrap();
        m.delete(e).unwrap();
        assert!(!m.contains(e));
        assert!(matches!(m.get(e), Err(DmemError::EntryNotFound(_))));
        assert!(matches!(m.delete(e), Err(DmemError::EntryNotFound(_))));
    }

    #[test]
    fn deregister_purges_server_entries() {
        let m = manager();
        m.register_server(server(0), ByteSize::from_mib(1), DonationPolicy::fixed(0.5));
        m.register_server(server(1), ByteSize::from_mib(1), DonationPolicy::fixed(0.5));
        for k in 0..3 {
            m.put(entry(server(0), k), vec![0u8; 64], SizeClass::C512)
                .unwrap();
        }
        m.put(entry(server(1), 0), vec![1u8; 64], SizeClass::C512)
            .unwrap();
        assert_eq!(m.deregister_server(server(0)), 3);
        assert!(!m.contains(entry(server(0), 0)));
        assert!(m.contains(entry(server(1), 0)), "other servers unaffected");
        // Capacity shrank to server 1's donation alone.
        assert_eq!(m.capacity(), ByteSize::from_mib(1).scaled(0.5));
    }

    #[test]
    fn servers_cannot_read_each_others_entries_by_key() {
        let m = manager();
        m.register_server(server(0), ByteSize::from_mib(1), DonationPolicy::fixed(0.5));
        m.put(entry(server(0), 7), vec![1u8; 8], SizeClass::C512)
            .unwrap();
        // Same key, different owner: namespaced, not found.
        assert!(m.get(entry(server(1), 7)).is_err());
    }

    #[test]
    fn balloon_advice_fires_on_repeated_overflow() {
        let m = manager();
        m.set_advice_policy(SimDuration::from_secs(10), 4);
        m.register_server(server(0), ByteSize::from_kib(160), DonationPolicy::fixed(0.1));
        // Fill the pool, then overflow repeatedly.
        for k in 0..4 {
            m.put(entry(server(0), k), vec![0u8; 4096], SizeClass::C4K)
                .unwrap();
        }
        assert_eq!(m.balloon_advice(server(0)), BalloonAdvice::Steady);
        for k in 100..104 {
            let _ = m.put(entry(server(0), k), vec![0u8; 4096], SizeClass::C4K);
        }
        assert_eq!(
            m.balloon_advice(server(0)),
            BalloonAdvice::BalloonToServer
        );
        // Outside the window the signal decays.
        m.clock.advance(SimDuration::from_secs(60));
        assert_eq!(m.balloon_advice(server(0)), BalloonAdvice::Steady);
    }

    #[test]
    fn remote_escalations_advise_shrinking_recv_pool() {
        let m = manager();
        m.set_advice_policy(SimDuration::from_secs(10), 3);
        m.register_server(server(0), ByteSize::from_mib(1), DonationPolicy::fixed(0.5));
        for _ in 0..3 {
            m.record_remote_escalation();
        }
        assert_eq!(m.balloon_advice(server(0)), BalloonAdvice::ShrinkRecvPool);
    }

    #[test]
    fn apply_recommendation_shrinks_donation_under_pressure() {
        let m = manager();
        m.set_advice_policy(SimDuration::from_secs(10), 4);
        m.register_server(
            server(0),
            ByteSize::from_kib(160),
            DonationPolicy {
                initial: 0.1,
                min: 0.0,
                max: 0.4,
            },
        );
        // Steady advice applies nothing.
        let outcome = m.apply_recommendation(server(0), 0.05);
        assert_eq!(outcome.advice, BalloonAdvice::Steady);
        assert!(!outcome.applied);
        assert_eq!(outcome.fraction, None);

        // Fill the pool and overflow past the advice threshold.
        for k in 0..4 {
            m.put(entry(server(0), k), vec![0u8; 4096], SizeClass::C4K)
                .unwrap();
        }
        for k in 100..104 {
            let _ = m.put(entry(server(0), k), vec![0u8; 4096], SizeClass::C4K);
        }
        let before = m.capacity();
        let outcome = m.apply_recommendation(server(0), 0.05);
        assert_eq!(outcome.advice, BalloonAdvice::BalloonToServer);
        assert!(outcome.applied);
        assert!((outcome.fraction.unwrap() - 0.05).abs() < 1e-9);
        assert!(m.capacity() < before, "donation actually moved");
    }

    #[test]
    fn ballooning_resizes_pool() {
        let m = manager();
        m.register_server(server(0), ByteSize::from_mib(1), DonationPolicy::paper_default());
        let before = m.capacity();
        m.adjust_donation(server(0), 0.30).unwrap(); // 0.10 -> 0.40
        assert!(m.capacity() > before);
        m.adjust_donation(server(0), -1.0).unwrap(); // clamp to 0.0
        assert_eq!(m.capacity(), ByteSize::ZERO);
    }
}
