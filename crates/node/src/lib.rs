//! Node-level memory disaggregation (paper §III, §IV-B).
//!
//! Virtual servers co-hosted on a physical node donate a configurable
//! fraction of their allocated DRAM to a **node-coordinated shared memory
//! pool**. A server under memory pressure parks data entries (swapped-out
//! pages, cache partitions) in that pool — at DRAM speed, not network
//! speed — before ever touching remote memory or disk.
//!
//! Components:
//!
//! * [`pool`] — a size-class slab allocator over the shared pool
//!   ([`SharedMemoryPool`]);
//! * [`donation`] — per-server donation accounting and the ballooning
//!   bounds of §IV-F ([`DonationRegistry`]);
//! * [`manager`] — the node manager: entry-level put/get/delete over the
//!   pool, the node's disaggregated-memory page table, and pressure
//!   signals ([`NodeManager`]);
//! * [`agent`] — the per-server LDMC/LDMS request path ([`LocalDmc`]).
//!
//! # Examples
//!
//! ```
//! use dmem_node::{LocalDmc, NodeManager};
//! use dmem_sim::{CostModel, SimClock};
//! use dmem_types::{ByteSize, DonationPolicy, NodeId, ServerId, SizeClass};
//! use std::sync::Arc;
//!
//! let clock = SimClock::new();
//! let node = NodeId::new(0);
//! let manager = Arc::new(NodeManager::new(node, ByteSize::from_mib(1),
//!                                          clock, CostModel::paper_default()));
//! let server = ServerId::new(node, 0);
//! manager.register_server(server, ByteSize::from_mib(16), DonationPolicy::paper_default());
//!
//! let ldmc = LocalDmc::new(server, Arc::clone(&manager));
//! ldmc.put(1, b"swapped page".to_vec(), SizeClass::C512)?;
//! assert_eq!(ldmc.get(1)?, b"swapped page".to_vec());
//! # Ok::<(), dmem_types::DmemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod donation;
pub mod manager;
pub mod pool;

pub use agent::LocalDmc;
pub use donation::DonationRegistry;
pub use manager::{AppliedBalloon, BalloonAdvice, NodeManager, NodeStats};
pub use pool::{BlockRef, PoolStats, SharedMemoryPool};
