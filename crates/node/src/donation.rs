//! Per-server donation accounting and ballooning (paper §IV-F).
//!
//! Each virtual server donates `x%` of its allocated memory to the node
//! shared pool. The fraction starts at the policy's `initial` value and a
//! balloon controller may move it within `[min, max]`: shrinking a
//! donation returns DRAM to a server under sustained pressure (policy (2)
//! of §IV-F); growing it enlarges the pool when the server has headroom.

use dmem_types::{ByteSize, DmemError, DmemResult, DonationPolicy, ServerId};
use std::collections::HashMap;
use std::fmt;

#[derive(Debug, Clone)]
struct Donation {
    allocated: ByteSize,
    policy: DonationPolicy,
    fraction: f64,
}

/// Tracks every server's donation to one node's shared pool.
#[derive(Debug, Default)]
pub struct DonationRegistry {
    servers: HashMap<ServerId, Donation>,
}

impl DonationRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DonationRegistry::default()
    }

    /// Registers a server with its allocated memory and donation policy.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] if the policy is invalid.
    pub fn register(
        &mut self,
        server: ServerId,
        allocated: ByteSize,
        policy: DonationPolicy,
    ) -> DmemResult<()> {
        policy.validate()?;
        self.servers.insert(
            server,
            Donation {
                allocated,
                policy,
                fraction: policy.initial,
            },
        );
        Ok(())
    }

    /// Removes a server (e.g. on failure); its donation leaves the pool.
    pub fn deregister(&mut self, server: ServerId) -> bool {
        self.servers.remove(&server).is_some()
    }

    /// The server's current donation in bytes.
    pub fn donated(&self, server: ServerId) -> ByteSize {
        self.servers
            .get(&server)
            .map(|d| d.allocated.scaled(d.fraction))
            .unwrap_or(ByteSize::ZERO)
    }

    /// The server's current donation fraction, if registered.
    pub fn fraction(&self, server: ServerId) -> Option<f64> {
        self.servers.get(&server).map(|d| d.fraction)
    }

    /// Sum of all donations: the shared pool's capacity.
    pub fn total_donated(&self) -> ByteSize {
        self.servers
            .values()
            .map(|d| d.allocated.scaled(d.fraction))
            .sum()
    }

    /// Number of registered servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Moves the server's donation fraction by `delta` (positive grows the
    /// pool, negative balloons memory back to the server), clamped to the
    /// policy bounds. Returns the new fraction.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::ServerUnavailable`] for an unknown server.
    pub fn adjust(&mut self, server: ServerId, delta: f64) -> DmemResult<f64> {
        let d = self
            .servers
            .get_mut(&server)
            .ok_or(DmemError::ServerUnavailable(server))?;
        d.fraction = (d.fraction + delta).clamp(d.policy.min, d.policy.max);
        Ok(d.fraction)
    }

    /// Iterates over `(server, donated_bytes)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, ByteSize)> + '_ {
        self.servers
            .iter()
            .map(|(s, d)| (*s, d.allocated.scaled(d.fraction)))
    }
}

impl fmt::Display for DonationRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} servers donating {}",
            self.server_count(),
            self.total_donated()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_types::NodeId;
    use proptest::prelude::*;

    fn server(i: u32) -> ServerId {
        ServerId::new(NodeId::new(0), i)
    }

    #[test]
    fn initial_donation_is_policy_initial() {
        let mut reg = DonationRegistry::new();
        reg.register(server(0), ByteSize::from_mib(100), DonationPolicy::paper_default())
            .unwrap();
        assert_eq!(reg.donated(server(0)), ByteSize::from_mib(100).scaled(0.10));
        assert_eq!(reg.fraction(server(0)), Some(0.10));
    }

    #[test]
    fn total_sums_servers() {
        let mut reg = DonationRegistry::new();
        for i in 0..4 {
            reg.register(server(i), ByteSize::from_mib(10), DonationPolicy::fixed(0.2))
                .unwrap();
        }
        assert_eq!(reg.total_donated(), ByteSize::from_mib(40).scaled(0.2));
        assert_eq!(reg.server_count(), 4);
    }

    #[test]
    fn adjust_clamps_to_policy() {
        let mut reg = DonationRegistry::new();
        reg.register(server(0), ByteSize::from_mib(100), DonationPolicy::paper_default())
            .unwrap();
        // Grow past max (0.40): clamped.
        assert_eq!(reg.adjust(server(0), 1.0).unwrap(), 0.40);
        // Shrink past min (0.0): clamped.
        assert_eq!(reg.adjust(server(0), -2.0).unwrap(), 0.0);
        assert_eq!(reg.donated(server(0)), ByteSize::ZERO);
    }

    #[test]
    fn fixed_policy_never_moves() {
        let mut reg = DonationRegistry::new();
        reg.register(server(1), ByteSize::from_mib(10), DonationPolicy::fixed(0.25))
            .unwrap();
        assert_eq!(reg.adjust(server(1), 0.1).unwrap(), 0.25);
        assert_eq!(reg.adjust(server(1), -0.1).unwrap(), 0.25);
    }

    #[test]
    fn deregister_removes_donation() {
        let mut reg = DonationRegistry::new();
        reg.register(server(0), ByteSize::from_mib(10), DonationPolicy::fixed(0.5))
            .unwrap();
        assert!(reg.deregister(server(0)));
        assert!(!reg.deregister(server(0)));
        assert_eq!(reg.total_donated(), ByteSize::ZERO);
        assert!(reg.fraction(server(0)).is_none());
    }

    #[test]
    fn unknown_server_adjust_fails() {
        let mut reg = DonationRegistry::new();
        assert!(matches!(
            reg.adjust(server(9), 0.1),
            Err(DmemError::ServerUnavailable(_))
        ));
    }

    #[test]
    fn invalid_policy_rejected() {
        let mut reg = DonationRegistry::new();
        let bad = DonationPolicy {
            initial: 0.5,
            min: 0.9,
            max: 1.0,
        };
        assert!(reg.register(server(0), ByteSize::from_mib(1), bad).is_err());
    }

    proptest! {
        #[test]
        fn prop_total_equals_sum_of_iter(
            allocs in proptest::collection::vec(1u64..1000, 1..10),
            fraction in 0.0f64..=1.0,
        ) {
            let mut reg = DonationRegistry::new();
            for (i, mib) in allocs.iter().enumerate() {
                reg.register(server(i as u32), ByteSize::from_mib(*mib), DonationPolicy::fixed(fraction)).unwrap();
            }
            let total: ByteSize = reg.iter().map(|(_, b)| b).sum();
            prop_assert_eq!(total, reg.total_donated());
        }

        #[test]
        fn prop_adjust_stays_in_bounds(deltas in proptest::collection::vec(-0.5f64..0.5, 1..20)) {
            let mut reg = DonationRegistry::new();
            reg.register(server(0), ByteSize::from_mib(64), DonationPolicy::paper_default()).unwrap();
            for delta in deltas {
                let f = reg.adjust(server(0), delta).unwrap();
                prop_assert!((0.0..=0.40).contains(&f));
            }
        }
    }
}
