//! The paper's Fig. 9 scenario: a Memcached-style store whose working set
//! starts fully swapped out, recovering its throughput as hot pages fault
//! back in — with proactive batch swap-in (PBS), without it, and on
//! Infiniswap.
//!
//! Run with: `cargo run --release --example kv_store_recovery`

use memory_disaggregation::prelude::*;
use memory_disaggregation::sim::SimDuration;
use memory_disaggregation::swap::{run_kv_timeline, SystemKind};

fn main() -> DmemResult<()> {
    let mut scale = SwapScale::bench();
    scale.memory_fraction = 0.5;
    let horizon = SimDuration::from_secs(30);

    let systems = [
        ("FastSwap + PBS", SystemKind::fastswap_default()),
        (
            "FastSwap w/o PBS",
            SystemKind::FastSwap {
                ratio: DistributionRatio::FS_SM,
                compression: CompressionMode::FourGranularity,
                pbs: false,
            },
        ),
        ("Infiniswap", SystemKind::Infiniswap),
    ];

    println!("Memcached ETC at 50% memory, cold start (working set on the swap device).");
    println!("Ops completed per virtual second:\n");
    let mut serieses = Vec::new();
    for (label, kind) in systems {
        let series = run_kv_timeline(kind, "Memcached", &scale, horizon)?;
        serieses.push((label, series));
    }

    print!("{:>6}", "sec");
    for (label, _) in &serieses {
        print!("{label:>20}");
    }
    println!();
    for second in 0..horizon.as_secs_f64() as usize {
        print!("{second:>6}");
        for (_, series) in &serieses {
            print!("{:>20}", series.get(second).copied().unwrap_or(0));
        }
        println!();
    }

    for (label, series) in &serieses {
        let peak = *series.iter().max().unwrap_or(&0);
        let recovery = series
            .iter()
            .position(|&ops| ops as f64 >= peak as f64 * 0.9)
            .map(|s| format!("{s}s"))
            .unwrap_or_else(|| "never".into());
        println!("{label}: peak {peak} ops/s, reaches 90% of peak at {recovery}");
    }
    println!("\nShape check (paper Fig. 9): PBS recovers fastest; without PBS the ramp");
    println!("is much slower; Infiniswap lags furthest behind.");
    Ok(())
}
