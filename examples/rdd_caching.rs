//! The paper's §V-B scenario: iterative analytics on a mini dataflow
//! engine, comparing vanilla Spark's disk spill against DAHI's off-heap
//! disaggregated caching across the Fig. 10 dataset sizes.
//!
//! Run with: `cargo run --release --example rdd_caching`

use memory_disaggregation::rdd::job::{
    executor_capacity, run_iterative_job, DatasetSize, JobSpec, SpillTier,
};
use memory_disaggregation::types::DmemResult;

fn main() -> DmemResult<()> {
    println!("Vanilla Spark (MEMORY_AND_DISK) vs DAHI, per workload and dataset size.\n");
    println!(
        "{:>20} {:>8} {:>14} {:>14} {:>9}  cache",
        "workload", "size", "vanilla", "DAHI", "speedup"
    );
    for spec in JobSpec::fig10_suite() {
        for size in DatasetSize::ALL {
            let vanilla = run_iterative_job(&spec, size, SpillTier::VanillaDisk)?;
            let dahi = run_iterative_job(&spec, size, SpillTier::Dahi)?;
            let speedup =
                vanilla.completion.as_nanos() as f64 / dahi.completion.as_nanos() as f64;
            println!(
                "{:>20} {:>8} {:>14} {:>14} {:>8.1}x  {} spills, {} spill reads",
                spec.name,
                size.to_string(),
                vanilla.completion.to_string(),
                dahi.completion.to_string(),
                speedup,
                dahi.cache.spills,
                dahi.cache.spill_hits,
            );
        }
        println!(
            "{:>20} executor cache: {}\n",
            "",
            executor_capacity(&spec)
        );
    }
    println!("Shape check (paper Fig. 10): small datasets tie (everything fits);");
    println!("medium and large favour DAHI, more so as datasets grow, with");
    println!("SVM > KMeans > LR > CC in speedup order.");
    Ok(())
}
