//! The paper's §V-A scenario: a memory-pressured iterative ML workload
//! under four swap systems — Linux disk swap, NBDX, Infiniswap, and
//! FastSwap — at the 75% and 50% memory configurations.
//!
//! Run with: `cargo run --release --example ml_swap_comparison`

use memory_disaggregation::prelude::*;
use memory_disaggregation::swap::SystemKind;

fn main() -> DmemResult<()> {
    let scale = SwapScale::bench();
    let systems = [
        SystemKind::Linux,
        SystemKind::Nbdx,
        SystemKind::Infiniswap,
        SystemKind::fastswap_default(),
    ];

    for fraction in [0.75, 0.50] {
        let scale = scale.with_fraction(fraction);
        println!(
            "\n=== LogisticRegression, {:.0}% of working set in memory ({} pages, {} resident) ===",
            fraction * 100.0,
            scale.working_set_pages,
            scale.frames()
        );
        let mut linux_time = None;
        for kind in systems {
            let result = run_ml_workload(kind, "LogisticRegression", &scale)?;
            let speedup = linux_time
                .map(|base: f64| base / result.completion.as_secs_f64())
                .unwrap_or(1.0);
            if linux_time.is_none() {
                linux_time = Some(result.completion.as_secs_f64());
            }
            println!(
                "{:>24}: completion {:>12}  (faults: {:>6} major, swap-ins {:>6})  {:>7.1}x vs Linux",
                result.system,
                result.completion.to_string(),
                result.stats.major_faults,
                result.stats.swap_ins,
                speedup,
            );
        }
    }
    println!("\nShape check (paper Fig. 7): FastSwap < Infiniswap < NBDX < Linux, with");
    println!("double-digit speedups over Linux that grow as memory pressure rises.");
    Ok(())
}
