//! Self-healing cluster: the background maintenance driver keeps the
//! §IV-D/F invariants — triple replication and relieved host pressure —
//! without any foreground intervention.
//!
//! Run with: `cargo run --release --example self_healing`

use memory_disaggregation::cluster::{Placer, RemoteSlabEvictor};
use memory_disaggregation::core::{Maintenance, MaintenanceConfig};
use memory_disaggregation::prelude::*;
use memory_disaggregation::sim::{DetRng, FailureEvent, SimDuration};
use memory_disaggregation::types::EntryLocation;
use std::sync::Arc;

fn main() -> DmemResult<()> {
    let mut config = ClusterConfig::small();
    config.nodes = 6;
    config.group_size = 6;
    config.server.donation = DonationPolicy::fixed(0.0); // remote-only
    let dm = Arc::new(DisaggregatedMemory::new(config)?);
    let server = dm.servers()[0];

    println!("storing 32 triple-replicated entries…");
    for key in 0..32 {
        dm.put(server, key, vec![key as u8; 2048])?;
    }

    // Start the node agent's timer wheel.
    let evictor = RemoteSlabEvictor::new(ByteSize::from_kib(16), 16);
    let placer = Placer::new(
        PlacementStrategy::WeightedRoundRobin,
        dm.membership().clone(),
        DetRng::new(3),
    );
    let mut maintenance = Maintenance::new(
        Arc::clone(&dm),
        MaintenanceConfig::default(),
        evictor,
        placer,
    );

    // Crash a replica host; its DRAM contents are gone on restart.
    let victim = match dm.record(server, 0).expect("tracked").location {
        EntryLocation::Remote { ref replicas } => replicas[0],
        ref other => panic!("expected remote placement, got {other:?}"),
    };
    println!("crashing and restarting {victim}…");
    dm.failures().inject_now(FailureEvent::NodeDown(victim));
    dm.failures().inject_now(FailureEvent::NodeUp(victim));
    let (lost, _) = dm.handle_node_restart(victim)?;
    println!("{lost} hosted replicas lost with the node's DRAM");

    let degraded = (0..32)
        .filter(|&k| match dm.record(server, k).unwrap().location {
            EntryLocation::Remote { ref replicas } => replicas.contains(&victim),
            _ => false,
        })
        .count();
    println!("{degraded} entries reference the wiped node and are degraded");

    // Let the background maintenance run for one virtual second.
    let report = maintenance.run_until(dm.clock().now() + SimDuration::from_secs(1))?;
    println!(
        "\nmaintenance window: {} repair scans, {} entries re-replicated, \
         {} eviction scans, {} advertisement refreshes",
        report.repair_scans,
        report.repaired_entries,
        report.eviction_scans,
        report.advertise_refreshes
    );

    for key in 0..32 {
        if let EntryLocation::Remote { replicas } = &dm.record(server, key).unwrap().location {
            assert_eq!(replicas.len(), 3, "entry {key} not repaired");
        }
        assert_eq!(dm.get(server, key)?, vec![key as u8; 2048]);
    }
    println!("all 32 entries back at replication degree 3 — cluster healed itself");
    Ok(())
}
