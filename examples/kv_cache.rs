//! The paper's other killer app (§III): key-value caching on
//! disaggregated memory. A Memcached-style cache keeps only its hot set
//! in heap; cold entries demote into the node shared pool and cluster
//! remote memory instead of being dropped, so what would be a
//! backing-database miss becomes a microsecond-scale disaggregated fetch.
//!
//! Run with: `cargo run --release --example kv_cache`

use memory_disaggregation::kv::KvCache;
use memory_disaggregation::prelude::*;
use memory_disaggregation::sim::DetRng;
use memory_disaggregation::workloads::ZipfSampler;
use std::sync::Arc;

const KEYS: usize = 2_000;
const OPS: usize = 20_000;

fn main() -> DmemResult<()> {
    let dm = Arc::new(DisaggregatedMemory::new(ClusterConfig::small())?);
    let server = dm.servers()[0];
    // Hot set holds ~1/8 of the data set.
    let mut cache = KvCache::new(Arc::clone(&dm), server, ByteSize::from_kib(256));

    // Populate: 2000 keys of 1 KiB.
    for key in 0..KEYS {
        cache.set(&format!("object:{key}"), vec![key as u8; 1024])?;
    }
    println!(
        "populated {KEYS} keys: {} hot, {} demoted to disaggregated memory",
        cache.hot_len(),
        cache.demoted_len()
    );

    // Serve a zipf-skewed read workload (ETC-like).
    let zipf = ZipfSampler::new(KEYS, 0.99);
    let mut rng = DetRng::new(42);
    let t0 = dm.clock().now();
    for _ in 0..OPS {
        let key = format!("object:{}", zipf.sample(&mut rng));
        let value = cache.get(&key)?;
        assert!(value.is_some(), "populated keys never miss");
    }
    let elapsed = dm.clock().now() - t0;

    let stats = cache.stats();
    println!("\nserved {OPS} zipf reads in {elapsed} (virtual time)");
    println!(
        "hit rate {:.1}%  ({} hot hits, {} disaggregated-memory hits, {} misses)",
        stats.hit_rate() * 100.0,
        stats.hot_hits,
        stats.dm_hits,
        stats.misses
    );
    println!(
        "throughput {:.0} ops/s (virtual)",
        OPS as f64 / elapsed.as_secs_f64()
    );
    let dm_stats = dm.stats();
    println!(
        "disaggregated tier holds {} page entries ({} shared / {} remote / {} disk)",
        dm_stats.entries, dm_stats.shared, dm_stats.remote, dm_stats.disk
    );
    println!("\nWithout disaggregation the {} cold keys would be re-fetched from the", cache.demoted_len());
    println!("backing store at millisecond cost; here they return in microseconds.");
    Ok(())
}
