//! A failure drill: crash replicas and links while the cluster is under
//! load, watch reads fail over, then repair back to triple modularity
//! (paper §IV-D).
//!
//! Run with: `cargo run --release --example failure_drill`

use memory_disaggregation::prelude::*;
use memory_disaggregation::sim::FailureEvent;
use memory_disaggregation::types::EntryLocation;

fn main() -> DmemResult<()> {
    let mut config = ClusterConfig::small();
    config.nodes = 6;
    config.group_size = 6;
    config.server.donation = DonationPolicy::fixed(0.0); // everything remote
    let dm = DisaggregatedMemory::new(config)?;
    let server = dm.servers()[0];

    println!("storing 16 entries with triple replication…");
    for key in 0..16 {
        dm.put(server, key, vec![key as u8; 2048])?;
    }

    let replicas = match dm.record(server, 0).expect("tracked").location {
        EntryLocation::Remote { replicas } => replicas,
        other => panic!("expected remote placement, got {other:?}"),
    };
    println!("entry 0 lives on {replicas:?}");

    println!("\ncrashing {} and cutting the link to {}…", replicas[0], replicas[1]);
    dm.failures().inject_now(FailureEvent::NodeDown(replicas[0]));
    dm.failures()
        .inject_now(FailureEvent::LinkDown(server.node(), replicas[1]));

    let mut served = 0;
    for key in 0..16 {
        if dm.get(server, key)? == vec![key as u8; 2048] {
            served += 1;
        }
    }
    println!("all {served}/16 reads served via replica failover");

    println!("\nrestarting the crashed node (its pool contents are lost)…");
    dm.failures().inject_now(FailureEvent::NodeUp(replicas[0]));
    let (lost, _) = dm.handle_node_restart(replicas[0])?;
    println!("node restarted; {lost} hosted replicas were lost with its DRAM");

    dm.failures()
        .inject_now(FailureEvent::LinkUp(server.node(), replicas[1]));
    let repaired = dm.repair_replicas();
    println!("re-replication repaired {repaired} degraded entries");

    for key in 0..16 {
        let record = dm.record(server, key).expect("tracked");
        if let EntryLocation::Remote { replicas } = &record.location {
            assert_eq!(replicas.len(), 3, "entry {key} not back to degree 3");
        }
        assert_eq!(dm.get(server, key)?, vec![key as u8; 2048]);
    }
    println!("\nall entries back at replication degree 3 and readable — drill passed");
    println!("virtual time elapsed: {}", dm.clock().now());
    Ok(())
}
