//! Quickstart: build a disaggregated-memory cluster, put/get across
//! tiers, and inspect where the bytes went.
//!
//! Run with: `cargo run --release --example quickstart`

use memory_disaggregation::prelude::*;

fn main() -> DmemResult<()> {
    // A 4-node cluster, 2 virtual servers per node, paper defaults:
    // 10% donations, triple replication, power-of-two-choices placement,
    // 4-granularity page compression.
    let dm = DisaggregatedMemory::new(ClusterConfig::small())?;
    let server = dm.servers()[0];
    println!("cluster up: {} nodes, {} virtual servers", dm.config().nodes, dm.servers().len());

    // Automatic tiering: the shared pool absorbs this page at DRAM speed.
    dm.put(server, 1, vec![42u8; 4096])?;
    let record = dm.record(server, 1).expect("tracked");
    println!(
        "key 1 -> {} ({} stored, compression {:.1}x)",
        record.location,
        record.stored_len,
        record.compression_ratio()
    );

    // Explicit tier choices, as the swap backends use.
    dm.put_pref(server, 2, vec![7u8; 4096], TierPreference::Remote)?;
    dm.put_pref(server, 3, vec![9u8; 4096], TierPreference::Disk)?;
    for key in [2, 3] {
        let record = dm.record(server, key).expect("tracked");
        println!("key {key} -> {}", record.location);
    }

    // Reads are tier-transparent and integrity-checked.
    assert_eq!(dm.get(server, 1)?, vec![42u8; 4096]);
    assert_eq!(dm.get(server, 2)?, vec![7u8; 4096]);
    assert_eq!(dm.get(server, 3)?, vec![9u8; 4096]);

    // Where did the virtual time go? Disk dominates, as always.
    println!("virtual time consumed: {}", dm.clock().now());
    let stats = dm.stats();
    println!(
        "census: {} entries ({} shared / {} remote / {} disk), {} shared capacity",
        stats.entries, stats.shared, stats.remote, stats.disk, stats.shared_capacity
    );
    Ok(())
}
