#!/usr/bin/env sh
# CI gate: offline build, full test suite, fixed-seed chaos smoke, and a
# wall-clock perf smoke.
#
# The workspace builds with no network access (all external deps are
# path-shimmed under shims/), so `cargo fetch` is a fast no-op that fails
# loudly if a registry dependency ever sneaks in.
#
# Every step is timed so slowdowns are visible in the CI log itself.
set -eu

cd "$(dirname "$0")"

step() {
    name="$1"
    shift
    echo "==> $name"
    t0=$(date +%s)
    "$@"
    echo "==> $name: done in $(( $(date +%s) - t0 ))s"
}

step "cargo fetch" cargo fetch

step "cargo build --release" cargo build --release

step "cargo test -q" cargo test -q

step "chaos smoke (seeds 0..32)" \
    cargo run --release --quiet --bin chaos -- --seeds 0..32

# The same sweep with the multi-tenant QoS engine installed: the two
# extra invariants (tenant-quota, priority-eviction) run on every seed,
# and admission/eviction decisions are digest-checked for determinism by
# the test suite.
step "qos chaos smoke (seeds 0..32)" \
    cargo run --release --quiet --bin chaos -- --seeds 0..32 --qos

# Fault-free chaos output is pinned byte-for-byte against the committed
# baseline: the fault-injection layer must cost exactly nothing — no RNG
# draws, no clock advances, no metric keys — when it is not installed.
step "chaos fault-free baseline (byte-identical)" sh -c '
    cargo run --release --quiet --bin chaos -- --seeds 0..32 \
        > results/chaos_smoke_baseline.txt
    git diff --exit-code -- results/chaos_smoke_baseline.txt
'

# The same sweep with the fabric fault layer armed: verb drops/delays/
# duplication, partitions and QP breaks on every seed, judged by the
# fault-reads and suspect-resolution invariants on top of the original
# five. Run twice and diffed: the whole fault schedule — injections,
# retries, failovers, suspicions — must be seed-deterministic down to
# the per-seed metrics digests.
step "faults chaos smoke (seeds 0..32, determinism gate)" sh -c '
    cargo run --release --quiet --bin chaos -- --seeds 0..32 --faults \
        > target/chaos_faults_a.txt
    cargo run --release --quiet --bin chaos -- --seeds 0..32 --faults \
        > target/chaos_faults_b.txt
    diff target/chaos_faults_a.txt target/chaos_faults_b.txt
'

# QoS isolation smoke: the reduced ext_qos sweep must be byte-identical
# to the committed golden CSV (virtual-clock determinism) and its
# built-in acceptance check must pass (high-priority p99 flat under QoS,
# degrading without it) — the binary exits nonzero otherwise.
step "ext_qos smoke (golden CSV)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin ext_qos -- --smoke > /dev/null
    git diff --exit-code -- results/ext_qos_smoke.csv
'

# Traced fig4: one telemetry-enabled pass exporting a Chrome-trace JSON,
# then validate the artifact (parses, trace-event shaped, spans from >= 4
# simulation layers). Guards the zero-cost-when-disabled contract's other
# half: tracing, when on, actually observes the whole stack.
step "traced fig4 + trace check" sh -c '
    cargo run --release --quiet -p dmem-bench --bin fig4 -- \
        --trace-out results/fig4_trace.json --metrics-out results/fig4_metrics.txt
    cargo run --release --quiet -p dmem-bench --bin dmem_top -- \
        --check-trace results/fig4_trace.json
'

# Perf smoke: quick variants of the three wall-clock scenarios, compared
# against the checked-in baseline with a 3x tolerance — catches gross
# algorithmic regressions, not percent-level noise.
step "perf smoke (3x tolerance)" \
    cargo run --release --quiet -p dmem-bench --bin perf -- --quick --check results/BENCH_perf_baseline.json

echo "==> ci.sh: all green"
