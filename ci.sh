#!/usr/bin/env sh
# CI gate: offline build, full test suite, fixed-seed chaos smoke, and a
# wall-clock perf smoke.
#
# The workspace builds with no network access (all external deps are
# path-shimmed under shims/), so `cargo fetch` is a fast no-op that fails
# loudly if a registry dependency ever sneaks in.
#
# Every step is timed so slowdowns are visible in the CI log itself.
set -eu

cd "$(dirname "$0")"

step() {
    name="$1"
    shift
    echo "==> $name"
    t0=$(date +%s)
    "$@"
    echo "==> $name: done in $(( $(date +%s) - t0 ))s"
}

step "cargo fetch" cargo fetch

step "cargo build --release" cargo build --release

step "cargo test -q" cargo test -q

step "chaos smoke (seeds 0..32)" \
    cargo run --release --quiet --bin chaos -- --seeds 0..32

# The same sweep with the multi-tenant QoS engine installed: the two
# extra invariants (tenant-quota, priority-eviction) run on every seed,
# and admission/eviction decisions are digest-checked for determinism by
# the test suite.
step "qos chaos smoke (seeds 0..32)" \
    cargo run --release --quiet --bin chaos -- --seeds 0..32 --qos

# Fault-free chaos output is pinned byte-for-byte against the committed
# baseline: the fault-injection layer must cost exactly nothing — no RNG
# draws, no clock advances, no metric keys — when it is not installed.
step "chaos fault-free baseline (byte-identical)" sh -c '
    cargo run --release --quiet --bin chaos -- --seeds 0..32 \
        > results/chaos_smoke_baseline.txt
    git diff --exit-code -- results/chaos_smoke_baseline.txt
'

# The same sweep with the fabric fault layer armed: verb drops/delays/
# duplication, partitions and QP breaks on every seed, judged by the
# fault-reads and suspect-resolution invariants on top of the original
# five. Run at --jobs 1 vs --jobs 4 and diffed: the whole fault schedule
# — injections, retries, failovers, suspicions, and the per-seed alert
# logs with their digests — must be byte-identical regardless of how the
# seeds fan across cores.
step "faults chaos smoke (seeds 0..32, --jobs 1 vs 4 determinism gate)" sh -c '
    cargo run --release --quiet --bin chaos -- --seeds 0..32 --faults --jobs 1 \
        > target/chaos_faults_a.txt
    cargo run --release --quiet --bin chaos -- --seeds 0..32 --faults --jobs 4 \
        > target/chaos_faults_b.txt
    diff target/chaos_faults_a.txt target/chaos_faults_b.txt
'

# Flight-recorder dump smoke: force a known invariant failure (factor-1
# data lost to a node crash) from a pinned seed and byte-diff the dump —
# violation line, recent-event ring, metric windows — against the
# committed golden. The dump path must stay deterministic or it is
# useless for debugging chaos failures.
step "chaos flight-recorder fixture (golden dump)" sh -c '
    cargo run --release --quiet --bin chaos -- --flight-fixture \
        > results/chaos_flight_fixture.txt
    git diff --exit-code -- results/chaos_flight_fixture.txt
'

# Sharded-engine determinism gate, chaos side: the same 32-seed sweep
# with the cluster split into 1 vs 4 host-groups (shard router armed)
# must produce byte-identical stdout — the router observes every verb's
# (virtual_time, shard, seq) mailbox key and panics on any misorder, but
# must never steer a single decision.
step "chaos shard determinism (--shards 1 vs 4, byte-diff)" sh -c '
    cargo run --release --quiet --bin chaos -- --seeds 0..32 --shards 1 \
        > target/chaos_shards_1.txt
    cargo run --release --quiet --bin chaos -- --seeds 0..32 --shards 4 \
        > target/chaos_shards_4.txt
    diff target/chaos_shards_1.txt target/chaos_shards_4.txt
'

# Sharded-engine determinism gate, rack side: the rack-scale smoke must
# be byte-identical at 1 vs 4 worker threads (same logical shards,
# different parallelism) AND match the committed golden CSV.
step "fig4_rack smoke determinism (workers 1 vs 4 + golden CSV)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin fig4_rack -- --smoke --shards 1 \
        > target/fig4_rack_smoke_1.txt
    cargo run --release --quiet -p dmem-bench --bin fig4_rack -- --smoke --shards 4 \
        > target/fig4_rack_smoke_4.txt
    diff target/fig4_rack_smoke_1.txt target/fig4_rack_smoke_4.txt
    git diff --exit-code -- results/fig4_rack_smoke.csv
'

# Rack timeline gate: the merged per-window metric timeline — per-shard
# samplers stitched in (window, shard) order — must be byte-identical at
# 1 vs 4 workers AND match the committed golden CSV.
step "fig4_rack timeline (workers 1 vs 4 + golden CSV)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin fig4_rack -- --smoke --shards 1 \
        --timeline-out results/fig4_rack_timeline.csv > /dev/null
    cargo run --release --quiet -p dmem-bench --bin fig4_rack -- --smoke --shards 4 \
        --timeline-out target/fig4_rack_timeline_4.csv > /dev/null
    diff results/fig4_rack_timeline.csv target/fig4_rack_timeline_4.csv
    git diff --exit-code -- results/fig4_rack_timeline.csv
'

# Rack perf smoke: wall-clock at 1 vs 4 workers against the committed
# baseline (3x tolerance). On a 4+ core machine the binary additionally
# enforces the >= 2x parallel-speedup acceptance gate; on smaller
# machines it prints a skip note and still checks the regression bound.
step "fig4_rack perf smoke (speedup gate + 3x tolerance)" \
    cargo run --release --quiet -p dmem-bench --bin fig4_rack -- --perf --check results/BENCH_rack_baseline.json

# QoS isolation smoke: the reduced ext_qos sweep must be byte-identical
# to the committed golden CSV (virtual-clock determinism) and its
# built-in acceptance check must pass (high-priority p99 flat under QoS,
# degrading without it) — the binary exits nonzero otherwise.
step "ext_qos smoke (golden CSV)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin ext_qos -- --smoke > /dev/null
    git diff --exit-code -- results/ext_qos_smoke.csv
'

# KV-cache smoke: reduced hot-set sweep, byte-diffed against the golden
# CSV; the binary also self-asserts the overflow-tier speedup (>= 5x at
# the smallest hot set) and exits nonzero if it regresses.
step "ext_kv_cache smoke (golden CSV)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin ext_kv_cache -- --smoke > /dev/null
    git diff --exit-code -- results/ext_kv_cache_smoke.csv
'

# LLM serving smoke: the reduced conversation-stream sweep must be
# byte-identical to the committed golden CSV (virtual-clock determinism)
# and its built-in acceptance check must pass (tiered p99 TTFT >= 5x
# better than the disk-offload baseline at the largest session count).
step "ext_llm_serving smoke (golden CSV)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin ext_llm_serving -- --smoke > /dev/null
    git diff --exit-code -- results/ext_llm_serving_smoke.csv
'

# LLM serving perf smoke: wall-clock of the three engines against the
# committed baseline with the same gross 3x tolerance as perf.rs.
step "ext_llm_serving perf smoke (3x tolerance)" \
    cargo run --release --quiet -p dmem-bench --bin ext_llm_serving -- --perf --check results/BENCH_llm_baseline.json

# Object-allocator smoke: the reduced granularity sweep must be
# byte-identical to the committed golden CSV, and the binary
# self-asserts the amplification acceptance gate (the page path moves
# >= 10x the fabric bytes of the object path on uniform-small) —
# nonzero exit otherwise.
step "ext_obj_alloc smoke (golden CSV + 10x gate)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin ext_obj_alloc -- --smoke > /dev/null
    git diff --exit-code -- results/ext_obj_alloc_smoke.csv
'

# Object-allocator perf smoke: wall-clock of both granularities against
# the committed baseline with the same gross 3x tolerance as perf.rs.
step "ext_obj_alloc perf smoke (3x tolerance)" \
    cargo run --release --quiet -p dmem-bench --bin ext_obj_alloc -- --perf --check results/BENCH_alloc_baseline.json

# Crossover smoke: the reduced RDMA/CXL/NVM sweep must be byte-identical
# to the committed golden CSV, and the binary self-asserts the §VI
# three-way split (every transport wins at least one working-set x
# granularity cell) — nonzero exit otherwise.
step "ext_crossover smoke (golden CSV + three-way gate)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin ext_crossover -- --smoke > /dev/null
    git diff --exit-code -- results/ext_crossover_smoke.csv
'

# Crossover perf smoke: wall-clock of the page-granularity column on all
# three transports against the committed baseline, same 3x tolerance.
step "ext_crossover perf smoke (3x tolerance)" \
    cargo run --release --quiet -p dmem-bench --bin ext_crossover -- --perf --check results/BENCH_cxl_baseline.json

# The chaos sweep with the CXL pool tier armed: pool-node outage windows
# and remote atomics on every seed, judged by the shadow-read and
# atomics-exact invariants on top of the originals. Run at --jobs 1 vs
# --jobs 4 and diffed — outages, failover reads, atomic sums and the
# cxl.* metric digests must be byte-identical regardless of fan-out.
step "cxl chaos smoke (seeds 0..32, --jobs 1 vs 4 determinism gate)" sh -c '
    cargo run --release --quiet --bin chaos -- --seeds 0..32 --cxl --jobs 1 \
        > target/chaos_cxl_a.txt
    cargo run --release --quiet --bin chaos -- --seeds 0..32 --cxl --jobs 4 \
        > target/chaos_cxl_b.txt
    diff target/chaos_cxl_a.txt target/chaos_cxl_b.txt
'

# dmem_top --cxl: the CXL pool report is pinned byte-for-byte by the
# dmem_top_cxl_golden test; regenerate the fixture here so drift shows
# up as a git diff in CI logs too.
step "dmem_top --cxl (golden report)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin dmem_top -- --cxl \
        > results/dmem_top_cxl.txt
    git diff --exit-code -- results/dmem_top_cxl.txt
'

# dmem_top --alloc: the object-allocator report is pinned byte-for-byte
# by the dmem_top_alloc_golden test; regenerate the fixture here so
# drift shows up as a git diff in CI logs too.
step "dmem_top --alloc (golden report)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin dmem_top -- --alloc \
        > results/dmem_top_alloc.txt
    git diff --exit-code -- results/dmem_top_alloc.txt
'

# dmem_top --kv: the tiered-KV occupancy report is pinned byte-for-byte
# by the dmem_top_kv_golden test; regenerate the fixture here so drift
# shows up as a git diff in CI logs too.
step "dmem_top --kv (golden report)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin dmem_top -- --kv \
        > results/dmem_top_kv.txt
    git diff --exit-code -- results/dmem_top_kv.txt
'

# dmem_top --all: the combined one-pass report (traced qos + tiered KV +
# rack timeline sparklines + chaos alert log + allocator + CXL pool) is
# pinned byte-for-byte by the dmem_top_all_golden test; regenerate here
# so drift shows in CI logs.
step "dmem_top --all (golden report)" sh -c '
    cargo run --release --quiet -p dmem-bench --bin dmem_top -- --all \
        > results/dmem_top_all.txt
    git diff --exit-code -- results/dmem_top_all.txt
'

# Traced fig4: one telemetry-enabled pass exporting a Chrome-trace JSON,
# then validate the artifact (parses, trace-event shaped, spans from >= 4
# simulation layers). Guards the zero-cost-when-disabled contract's other
# half: tracing, when on, actually observes the whole stack.
step "traced fig4 + trace check" sh -c '
    cargo run --release --quiet -p dmem-bench --bin fig4 -- \
        --trace-out results/fig4_trace.json --metrics-out results/fig4_metrics.txt
    cargo run --release --quiet -p dmem-bench --bin dmem_top -- \
        --check-trace results/fig4_trace.json
'

# Perf smoke: quick variants of the three wall-clock scenarios, compared
# against the checked-in baseline with a 3x tolerance — catches gross
# algorithmic regressions, not percent-level noise.
step "perf smoke (3x tolerance)" \
    cargo run --release --quiet -p dmem-bench --bin perf -- --quick --check results/BENCH_perf_baseline.json

echo "==> ci.sh: all green"
