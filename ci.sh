#!/usr/bin/env sh
# CI gate: offline build, full test suite, fixed-seed chaos smoke.
#
# The workspace builds with no network access (all external deps are
# path-shimmed under shims/), so `cargo fetch` is a fast no-op that fails
# loudly if a registry dependency ever sneaks in.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fetch"
cargo fetch

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> chaos smoke (seeds 0..32)"
cargo run --release --quiet --bin chaos -- --seeds 0..32

echo "==> ci.sh: all green"
